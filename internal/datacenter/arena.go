package datacenter

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/cluster"
	"repro/internal/device"
	"repro/internal/pcie"
	"repro/internal/place"
	"repro/internal/sim"
	"repro/internal/swap"
	"repro/internal/task"
	"repro/internal/vm"
	"repro/internal/workload"
)

// The Arena is the scale tier above Cluster: thousands of server nodes and
// one cluster dispatcher, partitioned across the parallel-in-time kernel's
// shards (sim.Shards). Cluster models a rack whose nodes share one fabric
// and one engine; the Arena models a fleet whose nodes interact only through
// the dispatcher, which is exactly the shape conservative-lookahead sharding
// wants: every cross-domain interaction is a placement RPC or a completion
// report with a real network latency floor, and that floor is the lookahead.
//
// Domain partitioning. Each shard's sub-engine owns a disjoint set of nodes
// — a node's machine, devices, swap paths, and running tasks all live on its
// shard and are touched only by events there. The dispatcher lives on shard
// 0 (alongside that shard's nodes) and keeps a cached resource view
// (cluster.ArenaView); it never reads node state directly, so no shard ever
// reaches across a domain boundary.
//
// Lookahead derivation. Dispatcher→node placement and node→dispatcher
// reports both cross the cluster network: ArenaRPCLatency is their floor,
// and therefore the group's lookahead. Everything else is node-local.
//
// Determinism. Dispatch messages carry keys from the dispatcher's monotone
// counter; report messages carry (nodeID, per-node counter) keys. Both are
// functions of model identity only, so delivery order — and with it every
// result, trace, and metric — is byte-identical for any shard count and any
// worker count (see sim.Shards).
type Arena struct {
	cfg    ArenaConfig
	shards *sim.Shards
	sched  *arenaSched
	nodes  []*arenaNode
	pol    *place.Policy
}

// ArenaRPCLatency is the dispatcher↔node network latency floor (one
// cross-rack RPC), and therefore the shard group's conservative lookahead.
const ArenaRPCLatency = 200 * sim.Microsecond

// ArenaConfig sizes an arena run.
type ArenaConfig struct {
	// Nodes is the fleet size; Shards partitions it (1 = serial execution);
	// ShardWorkers drives the windows (values < 2 run serially).
	Nodes        int
	Shards       int
	ShardWorkers int

	CoresPerNode int
	PagesPerNode int

	// XDM selects per-node multi-backend far memory (ssd+rdma+dram, least
	// loaded backend per task, isolated bypass paths). Off = static
	// single-backend: every task swaps to the node SSD through the shared
	// hierarchical path.
	XDM bool

	// Templates are the task shapes, cycled by arrival index. LocalRatio is
	// each task's resident share.
	Templates  []cluster.App
	LocalRatio float64

	// Tasks, when > 0, runs closed-loop: that many tasks are submitted to
	// the dispatcher at t=0 and the run ends when all complete.
	Tasks int

	// Arrivals, when non-nil, runs open-loop over Duration (+ Drain to let
	// admitted work finish); MaxQueue bounds the dispatcher's pending queue
	// (arrivals beyond it are refused); SLO judges placement delay.
	Arrivals workload.ArrivalProcess
	Duration sim.Duration
	Drain    sim.Duration
	MaxQueue int
	SLO      sim.Duration

	// Policy selects the dispatcher's placement policy (see internal/place);
	// nil keeps the arena default, worst-fit spreading — byte-for-byte the
	// pre-policy ArenaView.Place behavior. A one-shot policy refuses tasks
	// that fail to place instead of queueing them for retry; an
	// oversubscribing policy extends every node's page ledger by the
	// policy's overcommit slack.
	Policy *place.Policy

	Seed int64
}

// ArenaResult is one arena run's outcome. Every field except Stats is a
// deterministic simulation quantity, byte-identical across shard and worker
// counts; Stats carries wall-clock throughput measurements for reporting.
type ArenaResult struct {
	Offered   int
	Refused   int // open-loop arrivals bounced off the full queue
	Completed int
	InSLO     int // completions whose placement delay met cfg.SLO
	InFlight  int // open-loop work still unfinished at the horizon

	// Makespan is the dispatcher-observed completion time of the last task
	// (closed-loop) or the configured horizon (open-loop).
	Makespan sim.Duration

	// Placement delay (arrival → task start on its node) distribution.
	DelayP50, DelayP95, DelayP99 sim.Duration

	// MaxQueue is the dispatcher queue's high-water mark.
	MaxQueue int

	// MBE is memory balance effectiveness over the fleet's peak
	// utilizations (alpha 0.3, beta 0.7).
	MBE float64

	// StrandedFrac is the run's peak memory-stranding fraction: free pages
	// sitting on core-exhausted nodes (provisioned but unreachable for the
	// task at the queue head), measured at every placement failure, over
	// the fleet's page capacity.
	StrandedFrac float64

	// LastDone is the dispatcher-observed completion time of the last task
	// — equal to Makespan in closed-loop runs, and the true finish line in
	// open-loop runs (Makespan there is the configured horizon).
	LastDone sim.Duration

	// Events is the total event count across all sub-engines — a
	// deterministic proxy for simulation size.
	Events uint64

	Stats sim.ShardStats
}

// arenaNode is one server: a machine on its shard's engine plus local
// resource accounting. All fields are touched only by events on the node's
// shard.
type arenaNode struct {
	id      int
	shard   int
	machine *vm.Machine
	ssdName string

	usedCores, usedPages int
	perBackend           map[string]int // running tasks per backend (XDM spreading)
	filePath             *swap.Path
	msgSeq               uint64 // report key counter
}

// arenaSched is the dispatcher: cached view, FIFO queue, delay accounting.
// All fields are touched only by events on shard 0.
type arenaSched struct {
	view    *cluster.ArenaView
	queue   []arenaTask
	dispSeq uint64 // dispatch key counter

	// cands mirrors the view as placement-policy candidates, refreshed
	// per node on reserve/release so a placement scan never rebuilds the
	// whole fleet snapshot.
	cands []place.Candidate

	offered, refused, completed, inSLO int
	maxQueue                           int
	lastDone                           sim.Time
	peakStranded                       int
	delays                             []sim.Duration
}

// arenaTask is one unit of work moving through the dispatcher.
type arenaTask struct {
	id      int
	app     cluster.App
	pages   int
	arrived sim.Time
}

// NewArena builds the fleet. Node i lives on shard i mod Shards; the
// dispatcher lives on shard 0.
func NewArena(cfg ArenaConfig) *Arena {
	if cfg.Nodes <= 0 {
		panic("datacenter: arena needs at least one node")
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.ShardWorkers < 1 {
		cfg.ShardWorkers = 1
	}
	if len(cfg.Templates) == 0 {
		panic("datacenter: arena needs task templates")
	}
	if cfg.LocalRatio <= 0 || cfg.LocalRatio > 1 {
		cfg.LocalRatio = 0.5
	}
	pol := cfg.Policy
	if pol == nil {
		pol = defaultArenaPolicy
	}
	a := &Arena{
		cfg:    cfg,
		shards: sim.NewShards(cfg.Shards, ArenaRPCLatency),
		pol:    pol,
		sched: &arenaSched{
			view:  cluster.NewArenaView(cfg.Nodes, cfg.CoresPerNode, cfg.PagesPerNode),
			cands: make([]place.Candidate, cfg.Nodes),
		},
	}
	a.sched.view.SetOvercommit(pol.Overcommit)
	for i := range a.sched.cands {
		a.syncCandidate(i)
	}
	for i := 0; i < cfg.Nodes; i++ {
		shard := i % cfg.Shards
		eng := a.shards.Engine(shard)
		m := vm.NewMachine(eng, pcie.Gen4, 16, cfg.CoresPerNode, cfg.PagesPerNode)
		// Device names are globally unique (n0007.ssd) so observability
		// signatures stay canonical when many nodes share one engine — or
		// one engine hosts the whole fleet at Shards=1.
		ssd := fmt.Sprintf("n%04d.ssd", i)
		m.AttachDevice(device.SpecTestbedSSD(ssd))
		if cfg.XDM {
			m.AttachDevice(device.SpecConnectX5(fmt.Sprintf("n%04d.rdma", i)))
			m.AttachDevice(device.SpecRemoteDRAM(fmt.Sprintf("n%04d.dram", i)))
		}
		n := &arenaNode{
			id:         i,
			shard:      shard,
			machine:    m,
			ssdName:    ssd,
			perBackend: make(map[string]int),
		}
		n.filePath = swap.NewPath(eng, m.Backend(ssd), swap.NewChannel(eng, ssd+".file", 8))
		a.nodes = append(a.nodes, n)
	}
	return a
}

// Run executes the arena to completion (closed-loop) or to the configured
// horizon (open-loop) and reports the outcome.
func (a *Arena) Run() ArenaResult {
	cfg := a.cfg
	switch {
	case cfg.Arrivals != nil:
		a.startOpenLoop()
		a.shards.RunUntil(sim.Time(0).Add(cfg.Duration+cfg.Drain), cfg.ShardWorkers)
	case cfg.Tasks > 0:
		a.startClosedLoop()
		a.shards.Run(cfg.ShardWorkers)
	default:
		panic("datacenter: arena needs Tasks (closed-loop) or Arrivals (open-loop)")
	}
	return a.result()
}

// startClosedLoop queues every task at t=0 and fills the fleet.
func (a *Arena) startClosedLoop() {
	s := a.sched
	a.shards.Engine(0).At(0, func() {
		for i := 0; i < a.cfg.Tasks; i++ {
			s.offered++
			s.queue = append(s.queue, a.makeTask(i, 0))
		}
		if len(s.queue) > s.maxQueue {
			s.maxQueue = len(s.queue)
		}
		a.fill()
	})
}

// startOpenLoop drives the arrival process on the dispatcher's engine.
func (a *Arena) startOpenLoop() {
	s := a.sched
	eng := a.shards.Engine(0)
	rng := rand.New(rand.NewSource(a.cfg.Seed))
	maxQ := a.cfg.MaxQueue
	if maxQ <= 0 {
		maxQ = 4 * a.cfg.Nodes
	}
	id := 0
	var arrive func()
	arrive = func() {
		now := eng.Now()
		if now.Sub(0) >= a.cfg.Duration {
			return
		}
		s.offered++
		if len(s.queue) >= maxQ {
			s.refused++
		} else {
			s.queue = append(s.queue, a.makeTask(id, now))
			if len(s.queue) > s.maxQueue {
				s.maxQueue = len(s.queue)
			}
			a.fill()
		}
		id++
		eng.After(a.cfg.Arrivals.Gap(now, rng), arrive)
	}
	eng.After(a.cfg.Arrivals.Gap(0, rng), arrive)
}

// makeTask instantiates arrival i from the cycled templates.
func (a *Arena) makeTask(i int, now sim.Time) arenaTask {
	app := a.cfg.Templates[i%len(a.cfg.Templates)]
	app.Seed = a.cfg.Seed + int64(i)*1_000_003
	return arenaTask{id: i, app: app, pages: app.Spec.FootprintPages, arrived: now}
}

// defaultArenaPolicy is worst-fit spreading — byte-for-byte the pre-policy
// ArenaView.Place behavior (most free cores wins, free pages break ties,
// then the lowest node index). Immutable, safe to share across arenas.
var defaultArenaPolicy = place.Builtin("worst-fit")

// syncCandidate refreshes node i's policy candidate from the cached view.
// Tier 2 marks a warm node (running work), tier 1 a cold one; arena nodes
// are always healthy and accepting — the arena masks node death at the
// dispatcher by excluding crashed machines from the view before this layer.
func (a *Arena) syncCandidate(i int) {
	s := a.sched
	tier := 1
	if s.view.Running(i) > 0 {
		tier = 2
	}
	s.cands[i] = place.Candidate{
		ID:         i,
		FreeCores:  s.view.FreeCores(i),
		FreePages:  s.view.FreePages(i),
		TotalCores: a.cfg.CoresPerNode,
		TotalPages: a.cfg.PagesPerNode,
		Load:       s.view.Running(i),
		Tier:       tier,
		Healthy:    true,
		Accepts:    true,
	}
}

// fill places queued tasks while the placement policy finds a target. FIFO
// head-of-line: the queue does not reorder around a task that cannot place,
// which keeps placement order — and therefore everything downstream —
// trivially deterministic. A placement failure records the fleet's stranded
// memory at that instant; under a one-shot policy the task is then refused
// outright instead of waiting at the head for capacity.
func (a *Arena) fill() {
	s := a.sched
	for len(s.queue) > 0 {
		t := s.queue[0]
		node := a.pol.Place(place.Request{Cores: t.app.Cores, Pages: t.pages}, s.cands)
		if node < 0 {
			if stranded := s.view.StrandedPages(t.app.Cores); stranded > s.peakStranded {
				s.peakStranded = stranded
			}
			if !a.pol.OneShot() {
				return
			}
			s.queue = s.queue[1:]
			s.refused++
			continue
		}
		s.queue = s.queue[1:]
		s.view.Reserve(node, t.app.Cores, t.pages)
		a.syncCandidate(node)
		a.dispatch(t, node)
	}
}

// dispatch sends the placement RPC to the chosen node's shard.
func (a *Arena) dispatch(t arenaTask, node int) {
	s := a.sched
	s.dispSeq++
	n := a.nodes[node]
	a.shards.Send(0, n.shard, ArenaRPCLatency, s.dispSeq, func() {
		a.startTask(n, t)
	})
}

// startTask runs the task on its node. Runs on the node's shard.
func (a *Arena) startTask(n *arenaNode, t arenaTask) {
	eng := a.shards.Engine(n.shard)
	start := eng.Now()
	n.usedCores += t.app.Cores
	n.usedPages += t.pages
	backend := n.pickBackend()
	n.perBackend[backend]++

	cfg := task.Config{
		Eng:        eng,
		Name:       fmt.Sprintf("arena/n%04d/t%d", n.id, t.id),
		Spec:       t.app.Spec,
		Seed:       t.app.Seed,
		LocalRatio: a.cfg.LocalRatio,
		FilePath:   n.filePath,
	}
	if a.cfg.XDM {
		// Isolated bypass path with a per-task channel and adaptive
		// readahead — the console-tuned configuration.
		ch := swap.NewChannel(eng, cfg.Name+".ch", 4)
		cfg.SwapPath = swap.NewPath(eng, n.machine.Backend(backend), ch)
		cfg.GranularityPages = 32
		cfg.AdaptiveWindow = true
	} else {
		// Traditional stack: shared channel, hierarchical host hop, fixed
		// kernel readahead.
		cfg.SwapPath = n.machine.SharedPath(backend)
		cfg.GranularityPages = 8
		cfg.AlignedReadahead = true
	}

	task.New(cfg).Start(func(task.Stats) {
		n.usedCores -= t.app.Cores
		n.usedPages -= t.pages
		n.perBackend[backend]--
		n.msgSeq++
		key := uint64(n.id+1)<<32 | n.msgSeq
		delay := start.Sub(t.arrived)
		a.shards.Send(n.shard, 0, ArenaRPCLatency, key, func() {
			a.finishTask(t, n.id, delay)
		})
	})
}

// pickBackend chooses the least-loaded backend on the node, preferring the
// faster medium on ties (dram, then rdma, then ssd). Static mode always
// answers the node SSD.
func (n *arenaNode) pickBackend() string {
	names := n.machine.BackendNames() // sorted: dram < rdma < ssd
	if len(names) == 1 {
		return names[0]
	}
	sort.SliceStable(names, func(i, j int) bool {
		return n.perBackend[names[i]] < n.perBackend[names[j]]
	})
	return names[0]
}

// finishTask handles a completion report on the dispatcher: credit the
// cached view (which therefore lags reality by the report latency, like a
// heartbeat-fed scheduler cache), record the outcome, and place more work.
// Runs on shard 0.
func (a *Arena) finishTask(t arenaTask, node int, delay sim.Duration) {
	s := a.sched
	s.view.Release(node, t.app.Cores, t.pages)
	a.syncCandidate(node)
	s.completed++
	if a.cfg.SLO <= 0 || delay <= a.cfg.SLO {
		s.inSLO++
	}
	s.lastDone = a.shards.Engine(0).Now()
	s.delays = append(s.delays, delay)
	a.fill()
}

// result assembles the outcome.
func (a *Arena) result() ArenaResult {
	s := a.sched
	res := ArenaResult{
		Offered:   s.offered,
		Refused:   s.refused,
		Completed: s.completed,
		InSLO:     s.inSLO,
		InFlight:  s.offered - s.refused - s.completed,
		MaxQueue:  s.maxQueue,
		MBE:       cluster.MBE(s.view.PeakUtilizations(), 0.3, 0.7),
		Events:    a.shards.Stats().Events,
		Stats:     a.shards.Stats(),
	}
	if total := s.view.TotalPages(); total > 0 {
		res.StrandedFrac = float64(s.peakStranded) / float64(total)
	}
	res.LastDone = s.lastDone.Sub(0)
	if a.cfg.Arrivals != nil {
		res.Makespan = a.cfg.Duration + a.cfg.Drain
	} else {
		res.Makespan = s.lastDone.Sub(0)
	}
	sorted := append([]sim.Duration(nil), s.delays...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	res.DelayP50 = pick(sorted, 0.50)
	res.DelayP95 = pick(sorted, 0.95)
	res.DelayP99 = pick(sorted, 0.99)
	return res
}

// pick reads the q-quantile of a sorted slice (nearest-rank).
func pick(d []sim.Duration, q float64) sim.Duration {
	if len(d) == 0 {
		return 0
	}
	i := int(q * float64(len(d)-1))
	return d[i]
}

// Shards exposes the underlying shard group (stats, tests).
func (a *Arena) Shards() *sim.Shards { return a.shards }
