package datacenter

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/workload"
)

// arenaTestTemplates is a small two-shape request pool.
func arenaTestTemplates() []cluster.App {
	small := workload.Spec{
		Name: "arena-small", FootprintPages: 128, AnonFraction: 1.0, Coverage: 1.0,
		SegmentLen: 64, SeqShare: 0.2, RunLen: 16,
		HotShare: 0.2, HotProb: 0.8, WriteFraction: 0.2,
		ComputePerAccess: 400 * sim.Nanosecond, MainAccesses: 512,
	}
	big := small
	big.Name = "arena-big"
	big.FootprintPages = 256
	big.MainAccesses = 768
	big.SeqShare = 0.5
	return []cluster.App{
		{Spec: small, Cores: 1},
		{Spec: big, Cores: 1},
	}
}

func arenaTestConfig(shards, workers int) ArenaConfig {
	return ArenaConfig{
		Nodes:        12,
		Shards:       shards,
		ShardWorkers: workers,
		CoresPerNode: 4,
		PagesPerNode: 1024,
		XDM:          true,
		Templates:    arenaTestTemplates(),
		LocalRatio:   0.5,
		Tasks:        48,
		SLO:          50 * sim.Millisecond,
		Seed:         1,
	}
}

// comparable strips the wall-clock stats, which legitimately vary run to
// run; everything else must be byte-identical.
func comparable(r ArenaResult) ArenaResult {
	r.Stats = sim.ShardStats{}
	return r
}

func TestArenaClosedLoopCompletes(t *testing.T) {
	res := NewArena(arenaTestConfig(2, 1)).Run()
	if res.Completed != 48 || res.Offered != 48 {
		t.Fatalf("completed %d of %d offered, want all 48", res.Completed, res.Offered)
	}
	if res.InFlight != 0 {
		t.Fatalf("in flight %d after closed-loop drain", res.InFlight)
	}
	if res.Makespan <= 0 {
		t.Fatalf("makespan %v", res.Makespan)
	}
	if res.DelayP50 < 0 || res.DelayP99 < res.DelayP50 {
		t.Fatalf("delay quantiles inverted: p50 %v p99 %v", res.DelayP50, res.DelayP99)
	}
	if res.Events == 0 {
		t.Fatal("no events counted")
	}
}

func TestArenaDeterministicAcrossShardsAndWorkers(t *testing.T) {
	ref := comparable(NewArena(arenaTestConfig(1, 1)).Run())
	for _, tc := range []struct{ shards, workers int }{
		{2, 1}, {2, 2}, {4, 4}, {8, 8},
	} {
		got := comparable(NewArena(arenaTestConfig(tc.shards, tc.workers)).Run())
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("shards=%d workers=%d diverged from serial reference:\nref %+v\ngot %+v",
				tc.shards, tc.workers, ref, got)
		}
	}
}

func TestArenaXDMOutperformsStatic(t *testing.T) {
	xdm := NewArena(arenaTestConfig(2, 1)).Run()
	cfg := arenaTestConfig(2, 1)
	cfg.XDM = false
	static := NewArena(cfg).Run()
	if static.Completed != xdm.Completed {
		t.Fatalf("unequal work: static %d, xdm %d", static.Completed, xdm.Completed)
	}
	if xdm.Makespan >= static.Makespan {
		t.Fatalf("xdm makespan %v not better than static %v", xdm.Makespan, static.Makespan)
	}
}

func TestArenaOpenLoop(t *testing.T) {
	cfg := arenaTestConfig(2, 2)
	cfg.Tasks = 0
	cfg.Arrivals = workload.Poisson{RPS: 400}
	cfg.Duration = 200 * sim.Millisecond
	cfg.Drain = 100 * sim.Millisecond
	cfg.MaxQueue = 16
	res := NewArena(cfg).Run()
	if res.Offered == 0 {
		t.Fatal("no arrivals")
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if res.Offered < res.Refused+res.Completed {
		t.Fatalf("accounting broken: offered %d < refused %d + completed %d",
			res.Offered, res.Refused, res.Completed)
	}
	if res.Makespan != cfg.Duration+cfg.Drain {
		t.Fatalf("open-loop makespan %v, want horizon %v", res.Makespan, cfg.Duration+cfg.Drain)
	}

	// Open-loop runs must be deterministic across layouts too.
	ref := comparable(res)
	for _, tc := range []struct{ shards, workers int }{{1, 1}, {8, 4}} {
		c := cfg
		c.Shards, c.ShardWorkers = tc.shards, tc.workers
		if got := comparable(NewArena(c).Run()); !reflect.DeepEqual(ref, got) {
			t.Fatalf("open-loop shards=%d workers=%d diverged:\nref %+v\ngot %+v",
				tc.shards, tc.workers, ref, got)
		}
	}
}

func TestArenaOverloadRefuses(t *testing.T) {
	cfg := arenaTestConfig(2, 1)
	cfg.Tasks = 0
	cfg.Nodes = 2
	cfg.CoresPerNode = 1
	cfg.PagesPerNode = 256
	cfg.Arrivals = workload.Poisson{RPS: 20000}
	cfg.Duration = 100 * sim.Millisecond
	cfg.Drain = 50 * sim.Millisecond
	cfg.MaxQueue = 8
	res := NewArena(cfg).Run()
	if res.Refused == 0 {
		t.Fatalf("overload never refused: %+v", res)
	}
}
