package datacenter

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/analyze"
	"repro/internal/invariant"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// obsArenaConfig is a small enough fleet that no recorder hits the span
// event cap — span content comparisons below require lossless capture.
func obsArenaConfig(shards, workers int) ArenaConfig {
	cfg := arenaTestConfig(shards, workers)
	cfg.Tasks = 16
	return cfg
}

// runObservedArena executes one observed arena run and returns the exported
// trace and metrics artifacts.
func runObservedArena(t *testing.T, shards, workers int) (trace, metricsOut []byte) {
	t.Helper()
	restore := obs.Capture()
	defer restore()
	defer obs.Reset()
	res := NewArena(obsArenaConfig(shards, workers)).Run()
	if res.Completed == 0 {
		t.Fatal("arena completed nothing")
	}
	var tb, mb bytes.Buffer
	if err := obs.WriteTrace(&tb); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteMetricsJSON(&mb); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), mb.Bytes()
}

// TestArenaObservabilityWorkersInvariant locks the parallelism-invisibility
// guarantee for artifacts: at a fixed shard layout, the exported trace and
// metrics bytes are identical whether one worker or eight drive the windows.
// Runtime invariants stay enabled and clean throughout.
func TestArenaObservabilityWorkersInvariant(t *testing.T) {
	var violations []invariant.Violation
	restoreHandler := invariant.SetHandler(func(v invariant.Violation) {
		violations = append(violations, v)
	})
	defer restoreHandler()
	invariant.Enable()
	defer invariant.Disable()

	refTrace, refMetrics := runObservedArena(t, 8, 1)
	if len(refTrace) == 0 || len(refMetrics) == 0 {
		t.Fatal("observed run exported nothing")
	}
	gotTrace, gotMetrics := runObservedArena(t, 8, 8)
	if !bytes.Equal(refTrace, gotTrace) {
		t.Error("trace bytes differ between 1 and 8 shard workers")
	}
	if !bytes.Equal(refMetrics, gotMetrics) {
		t.Error("metrics bytes differ between 1 and 8 shard workers")
	}
	if len(violations) > 0 {
		t.Fatalf("invariants violated under sharded execution: first = %+v (of %d)", violations[0], len(violations))
	}
}

// spanKey is a span reduced to its layout-independent identity. Op IDs are
// deliberately excluded: they are allocation-ordered correlation handles, so
// their numeric values follow engine topology even though the operations
// they label do not (correlation itself is covered at fixed layout by the
// latency-attribution tests).
type spanKey struct {
	Track  string
	Name   string
	TsNs   int64
	DurNs  int64
	Stripe int
}

// canonicalObs reduces artifacts to their layout-independent content:
// the multiset of spans (virtual times, tracks, op correlation — with the
// per-engine run section stripped) and the per-name counter totals and
// merged histograms across all run sections.
func canonicalObs(t *testing.T, trace, metricsOut []byte) (spans []spanKey, counters map[string]float64, hists map[string]*metrics.Histogram) {
	t.Helper()
	tr, err := analyze.ParseTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Spans {
		spans = append(spans, spanKey{s.Track, s.Name, s.TsNs, s.DurNs, s.Stripe})
	}
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		return fmt.Sprintf("%+v", a) < fmt.Sprintf("%+v", b)
	})
	m, err := analyze.ParseMetrics(metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	counters = map[string]float64{}
	hists = map[string]*metrics.Histogram{}
	for _, run := range m.Runs {
		for name, v := range run.Counters {
			counters[name] += v
		}
		for name, h := range run.Hists {
			if hists[name] == nil {
				hists[name] = &metrics.Histogram{}
			}
			hists[name].Merge(h)
		}
	}
	return spans, counters, hists
}

// floatsClose compares accumulated float totals with a tiny relative
// tolerance: summing the same addends from differently partitioned run
// sections can reorder float additions.
func floatsClose(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if scale < 0 {
		scale = -scale
	}
	return diff <= 1e-9*(1+scale)
}

// countersEqual compares per-name counter totals with floatsClose.
func countersEqual(a, b map[string]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for name, v := range a {
		w, ok := b[name]
		if !ok || !floatsClose(v, w) {
			return false
		}
	}
	return true
}

// histsEqual compares merged histograms on their exact fields — observation
// count, min, max, and sparse bucket contents. Sums are compared with a tiny
// relative tolerance: merging the same observations from differently
// partitioned run sections can reorder float additions.
func histsEqual(a, b map[string]*metrics.Histogram) bool {
	if len(a) != len(b) {
		return false
	}
	for name, ha := range a {
		hb, ok := b[name]
		if !ok || ha.Count() != hb.Count() || ha.Min() != hb.Min() || ha.Max() != hb.Max() {
			return false
		}
		ai, ac := ha.Buckets()
		bi, bc := hb.Buckets()
		if !reflect.DeepEqual(ai, bi) || !reflect.DeepEqual(ac, bc) {
			return false
		}
		if !floatsClose(ha.Sum(), hb.Sum()) {
			return false
		}
	}
	return true
}

// TestArenaObservabilityCanonicalAcrossShards locks the layout-invariance
// guarantee: re-partitioning the fleet across 1, 2, or 8 shards moves
// components between sub-engines (and with them the artifact's per-engine
// run sections), but the observed *content* — every span at its virtual
// time, every counter total, every latency histogram — is identical.
func TestArenaObservabilityCanonicalAcrossShards(t *testing.T) {
	refTrace, refMetrics := runObservedArena(t, 1, 1)
	refSpans, refCounters, refHists := canonicalObs(t, refTrace, refMetrics)
	if len(refSpans) == 0 || len(refCounters) == 0 {
		t.Fatal("reference run observed nothing")
	}
	for _, shards := range []int{2, 8} {
		trace, metricsOut := runObservedArena(t, shards, shards)
		gotSpans, gotCounters, gotHists := canonicalObs(t, trace, metricsOut)
		if !reflect.DeepEqual(refSpans, gotSpans) {
			t.Errorf("shards=%d: span content differs from serial run (%d vs %d spans)",
				shards, len(refSpans), len(gotSpans))
			for i := range refSpans {
				if i < len(gotSpans) && refSpans[i] != gotSpans[i] {
					t.Logf("first diff at %d:\n  ref %+v\n  got %+v", i, refSpans[i], gotSpans[i])
					break
				}
			}
		}
		if !countersEqual(refCounters, gotCounters) {
			t.Errorf("shards=%d: counter totals differ from serial run", shards)
		}
		if !histsEqual(refHists, gotHists) {
			t.Errorf("shards=%d: histograms differ from serial run", shards)
		}
	}
}
