package device

import (
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/units"
)

// The specs below are anchored to the numbers the paper quotes: Fig 1(b)'s
// 7.9–46 GB/s single-device range, Table IV's baseline configurations
// (disk 2 GB/s, SSD 7.9 GB/s, RDMA 10 GB/s), and the testbed description
// (1TB SSD at 3.8 GB/s, 6TB HDD at 0.4 GB/s, dual-port 10 GB/s ConnectX-5).

// SpecHDD models the testbed's 6 TB HDD (0.4 GB/s, seek-bound random access).
func SpecHDD(name string) Spec {
	return Spec{
		Name: name, Kind: HDD,
		Bandwidth:        units.GBps(0.4),
		ReadLatency:      80 * sim.Microsecond,
		WriteLatency:     100 * sim.Microsecond,
		RandomPenalty:    4 * sim.Millisecond,
		Channels:         1,
		ChannelBandwidth: units.GBps(0.4),
		Capacity:         6 * units.TiB,
		CostPerGB:        0.03,
		SlotGen:          pcie.Gen3, SlotLanes: 4,
	}
}

// SpecDiskArray models the Linux-swap baseline's striped disk backend
// (Table IV: disk, 2 GB/s, 2T).
func SpecDiskArray(name string) Spec {
	return Spec{
		Name: name, Kind: HDD,
		Bandwidth:        units.GBps(2),
		ReadLatency:      70 * sim.Microsecond,
		WriteLatency:     90 * sim.Microsecond,
		RandomPenalty:    900 * sim.Microsecond,
		Channels:         4,
		ChannelBandwidth: units.GBps(0.6),
		Capacity:         2 * units.TiB,
		CostPerGB:        0.05,
		SlotGen:          pcie.Gen3, SlotLanes: 8,
	}
}

// SpecTestbedSSD models the testbed's 1 TB NVMe SSD (3.8 GB/s).
func SpecTestbedSSD(name string) Spec {
	return Spec{
		Name: name, Kind: SSD,
		Bandwidth:        units.GBps(3.8),
		ReadLatency:      75 * sim.Microsecond,
		WriteLatency:     25 * sim.Microsecond,
		RandomPenalty:    12 * sim.Microsecond,
		Channels:         4,
		ChannelBandwidth: units.GBps(1.0),
		Capacity:         1 * units.TiB,
		CostPerGB:        0.10,
		SlotGen:          pcie.Gen3, SlotLanes: 4,
	}
}

// SpecNVMeSSD models a top-end NVMe SSD (7.9 GB/s, the TMO baseline's
// device and the low end of Fig 1(b)).
func SpecNVMeSSD(name string) Spec {
	return Spec{
		Name: name, Kind: SSD,
		Bandwidth:        units.GBps(7.9),
		ReadLatency:      60 * sim.Microsecond,
		WriteLatency:     18 * sim.Microsecond,
		RandomPenalty:    9 * sim.Microsecond,
		Channels:         8,
		ChannelBandwidth: units.GBps(2.0),
		Capacity:         1 * units.TiB,
		CostPerGB:        0.12,
		SlotGen:          pcie.Gen4, SlotLanes: 4,
	}
}

// SpecConnectX5 models the testbed's Mellanox ConnectX-5 (dual-port,
// 10 GB/s aggregate, RoCE) reaching remote DRAM.
func SpecConnectX5(name string) Spec {
	return Spec{
		Name: name, Kind: RDMA,
		Bandwidth:        units.GBps(10),
		ReadLatency:      3 * sim.Microsecond,
		WriteLatency:     3 * sim.Microsecond,
		RandomPenalty:    0,
		Channels:         2, // dual port; event queues raise this online
		ChannelBandwidth: units.GBps(5),
		Capacity:         256 * units.GiB,
		CostPerGB:        1.0,
		SlotGen:          pcie.Gen3, SlotLanes: 16,
	}
}

// SpecConnectX6 models a ConnectX-6 200 Gb/s NIC (25 GB/s).
func SpecConnectX6(name string) Spec {
	return Spec{
		Name: name, Kind: RDMA,
		Bandwidth:        units.GBps(25),
		ReadLatency:      2500 * sim.Nanosecond,
		WriteLatency:     2500 * sim.Nanosecond,
		RandomPenalty:    0,
		Channels:         4,
		ChannelBandwidth: units.GBps(7),
		Capacity:         512 * units.GiB,
		CostPerGB:        1.1,
		SlotGen:          pcie.Gen4, SlotLanes: 16,
	}
}

// SpecBlueField3 models an NVIDIA BlueField-3 DPU card (~40 GB/s effective).
func SpecBlueField3(name string) Spec {
	return Spec{
		Name: name, Kind: DPU,
		Bandwidth:        units.GBps(40),
		ReadLatency:      2 * sim.Microsecond,
		WriteLatency:     2 * sim.Microsecond,
		RandomPenalty:    0,
		Channels:         8,
		ChannelBandwidth: units.GBps(6),
		Capacity:         1 * units.TiB,
		CostPerGB:        1.4,
		SlotGen:          pcie.Gen5, SlotLanes: 16,
	}
}

// SpecCXL models a CXL 1.0 memory expander (46 GB/s, the top of Fig 1(b)),
// treated as a far-memory backend (the paper also supports treating it as a
// CPU-less NUMA node; see internal/mem).
func SpecCXL(name string) Spec {
	return Spec{
		Name: name, Kind: CXL,
		Bandwidth:        units.GBps(46),
		ReadLatency:      500 * sim.Nanosecond,
		WriteLatency:     500 * sim.Nanosecond,
		RandomPenalty:    0,
		Channels:         8,
		ChannelBandwidth: units.GBps(8),
		Capacity:         512 * units.GiB,
		CostPerGB:        2.5,
		SlotGen:          pcie.Gen5, SlotLanes: 16,
	}
}

// SwitchHopLatency is the one-way store-and-forward latency a CXL switch
// hop adds to a pooled-memory access (CXL-DMSim measures ~80–100 ns per
// switch traversal on Gen5 ports).
const SwitchHopLatency = 90 * sim.Nanosecond

// SpecPooledCXL models one host's port onto switch-attached pooled CXL
// memory: the same 46 GB/s media class as SpecCXL, with per-op latency
// growing by SwitchHopLatency per switch hop and the port narrowed to ×8 —
// pooled DCD capacity trades a little path width for a much larger, shared
// capacity at lower cost per GB. With hops = 0 the latency envelope
// degenerates to the direct-attached SpecCXL expander.
func SpecPooledCXL(name string, hops int) Spec {
	lat := 500*sim.Nanosecond + sim.Duration(hops)*SwitchHopLatency
	return Spec{
		Name: name, Kind: PooledCXL,
		Bandwidth:        units.GBps(46),
		ReadLatency:      lat,
		WriteLatency:     lat,
		RandomPenalty:    0,
		Channels:         8,
		ChannelBandwidth: units.GBps(8),
		Capacity:         2 * units.TiB,
		CostPerGB:        1.6,
		SlotGen:          pcie.Gen5, SlotLanes: 8,
	}
}

// SpecRemoteDRAM models host-donated DRAM reached over the memory bus /
// hypervisor shared-memory path (Fastswap's and XMemPod's "DRAM backend").
func SpecRemoteDRAM(name string) Spec {
	return Spec{
		Name: name, Kind: RemoteDRAM,
		Bandwidth:        units.GBps(30), // copy-path bound, not raw DRAM speed
		ReadLatency:      900 * sim.Nanosecond,
		WriteLatency:     900 * sim.Nanosecond,
		RandomPenalty:    0,
		Channels:         8,
		ChannelBandwidth: units.GBps(6),
		Capacity:         64 * units.GiB,
		CostPerGB:        3.0,
		SlotGen:          pcie.Gen4, SlotLanes: 16,
	}
}

// Catalog returns the Fig 1(b) device lineup in presentation order.
func Catalog() []Spec {
	return []Spec{
		SpecNVMeSSD("nvme-ssd"),
		SpecConnectX5("connectx-5"),
		SpecConnectX6("connectx-6"),
		SpecBlueField3("bluefield-3"),
		SpecCXL("cxl-1.0"),
	}
}

// Host bundles an engine, a fabric, and the host's root-complex bandwidth
// budget. Every attached device's transfers traverse the root-complex link,
// which is what makes a single PCIe fabric the shared bottleneck that
// multi-backend far memory exists to saturate.
type Host struct {
	Eng    *sim.Engine
	Fabric *pcie.Fabric
	Root   *pcie.Link
}

// NewHost creates a host whose root complex offers the duplex bandwidth of
// the given PCIe generation and lane count (e.g. Gen4 ×16 = 64 GB/s).
func NewHost(eng *sim.Engine, gen pcie.Generation, lanes int) *Host {
	fb := pcie.NewFabric(eng)
	return &Host{
		Eng:    eng,
		Fabric: fb,
		Root:   fb.NewLink("root-complex", gen.DuplexBandwidth(lanes)),
	}
}

// Attach instantiates a device on this host's fabric, sharing the
// root-complex budget.
func (h *Host) Attach(spec Spec) *Device {
	return New(h.Eng, h.Fabric, spec, h.Root)
}
