package device

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestSingleOpLatency(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, pcie.Gen4, 16)
	d := h.Attach(SpecConnectX5("rdma0"))
	var lat sim.Duration
	d.Submit(Op{Size: units.PageSize, Sequential: true}, func(l sim.Duration) { lat = l })
	eng.Run()
	// 3µs base + 4KiB at the 5 GB/s single-channel cap ≈ 3µs + 0.82µs.
	want := 3.819
	if got := lat.Microseconds(); math.Abs(got-want) > 0.05 {
		t.Fatalf("latency %.3fµs, want ~%.3fµs", got, want)
	}
	if d.Ops.Value != 1 || d.ReadOps.Value != 1 {
		t.Fatalf("op counters: ops=%d reads=%d", d.Ops.Value, d.ReadOps.Value)
	}
}

func TestRandomPenaltyApplied(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, pcie.Gen3, 16)
	d := h.Attach(SpecTestbedSSD("ssd0"))
	var seqLat, randLat sim.Duration
	d.Submit(Op{Size: units.PageSize, Sequential: true}, func(l sim.Duration) { seqLat = l })
	eng.Run()
	d.Submit(Op{Size: units.PageSize, Sequential: false}, func(l sim.Duration) { randLat = l })
	eng.Run()
	diff := randLat - seqLat
	want := d.Spec().RandomPenalty
	if math.Abs(float64(diff-want)) > float64(sim.Microsecond) {
		t.Fatalf("random penalty %v, want ~%v", diff, want)
	}
}

func TestWriteLatencyDiffers(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, pcie.Gen3, 16)
	d := h.Attach(SpecTestbedSSD("ssd0"))
	var rd, wr sim.Duration
	d.Submit(Op{Size: units.PageSize, Sequential: true}, func(l sim.Duration) { rd = l })
	eng.Run()
	d.Submit(Op{Size: units.PageSize, Sequential: true, Write: true}, func(l sim.Duration) { wr = l })
	eng.Run()
	if wr >= rd {
		t.Fatalf("SSD write (%v) should be faster than read (%v) per the spec", wr, rd)
	}
	if d.WriteOps.Value != 1 || d.BytesWrit != float64(units.PageSize) {
		t.Fatalf("write accounting: ops=%d bytes=%v", d.WriteOps.Value, d.BytesWrit)
	}
}

func TestChannelQueueing(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, pcie.Gen4, 16)
	spec := SpecConnectX5("rdma0")
	spec.Channels = 1
	d := h.Attach(spec)
	var lats []sim.Duration
	for i := 0; i < 3; i++ {
		d.Submit(Op{Size: units.PageSize, Sequential: true}, func(l sim.Duration) { lats = append(lats, l) })
	}
	eng.Run()
	// With one channel ops serialize: each successive op waits ~one more
	// service time.
	if !(lats[0] < lats[1] && lats[1] < lats[2]) {
		t.Fatalf("latencies not increasing under queueing: %v", lats)
	}
}

func TestWideningChannelsIncreasesThroughput(t *testing.T) {
	run := func(channels int) sim.Time {
		eng := sim.NewEngine()
		h := NewHost(eng, pcie.Gen4, 16)
		spec := SpecTestbedSSD("ssd0")
		spec.Channels = channels
		d := h.Attach(spec)
		const n = 64
		for i := 0; i < n; i++ {
			d.Submit(Op{Size: units.PageSize, Sequential: true}, nil)
		}
		eng.Run()
		return eng.Now()
	}
	t1, t4 := run(1), run(4)
	if t4 >= t1 {
		t.Fatalf("4 channels (%v) not faster than 1 (%v)", t4, t1)
	}
	speedup := float64(t1) / float64(t4)
	if speedup < 2 {
		t.Fatalf("channel speedup %.2f, want >= 2", speedup)
	}
}

func TestSetChannelsOnline(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, pcie.Gen4, 16)
	spec := SpecTestbedSSD("ssd0")
	spec.Channels = 1
	d := h.Attach(spec)
	if d.Channels() != 1 {
		t.Fatalf("channels=%d", d.Channels())
	}
	d.SetChannels(8)
	if d.Channels() != 8 {
		t.Fatalf("channels after resize=%d", d.Channels())
	}
}

// The multi-backend aggregation result at device level: two SSDs on one host
// deliver ~2x the page throughput of one, while the fabric stays unsaturated.
func TestTwoDevicesAggregateThroughput(t *testing.T) {
	run := func(nDevices int) float64 {
		eng := sim.NewEngine()
		h := NewHost(eng, pcie.Gen4, 16)
		const totalBytes = 1 << 30
		per := int64(totalBytes / nDevices)
		for i := 0; i < nDevices; i++ {
			d := h.Attach(SpecTestbedSSD("ssd"))
			const chunk = 2 * units.MiB
			for off := int64(0); off < per; off += chunk {
				d.Submit(Op{Size: chunk, Sequential: true}, nil)
			}
		}
		eng.Run()
		return totalBytes / eng.Now().Seconds()
	}
	one, two := run(1), run(2)
	ratio := two / one
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("2-device throughput ratio %.2f, want ~2.0 (one=%.1f MB/s two=%.1f MB/s)",
			ratio, one/1e6, two/1e6)
	}
}

func TestRootComplexCapsAggregate(t *testing.T) {
	// Many fast devices on a narrow host link: aggregate throughput is
	// pinned at the root-complex budget.
	eng := sim.NewEngine()
	h := NewHost(eng, pcie.Gen1, 4) // tiny budget: 4 GT/s*0.8/8*2 = 1 GB/s duplex... see assertion
	budget := float64(pcie.Gen1.DuplexBandwidth(4))
	const totalBytes = 256 << 20
	for i := 0; i < 4; i++ {
		d := h.Attach(SpecCXL("cxl"))
		d.Submit(Op{Size: totalBytes / 4, Sequential: true}, nil)
	}
	eng.Run()
	rate := totalBytes / eng.Now().Seconds()
	if rate > budget*1.01 {
		t.Fatalf("aggregate %.2f GB/s exceeds root budget %.2f GB/s", rate/1e9, budget/1e9)
	}
	if rate < budget*0.9 {
		t.Fatalf("aggregate %.2f GB/s far below achievable budget %.2f GB/s", rate/1e9, budget/1e9)
	}
}

func TestCatalogWithinPaperRange(t *testing.T) {
	// Fig 1(b): single-device bandwidth spans 7.9 to 46 GB/s.
	for _, spec := range Catalog() {
		gb := spec.Bandwidth.GB()
		if gb < 7.9-0.01 || gb > 46+0.01 {
			t.Errorf("%s bandwidth %.1f GB/s outside Fig 1(b) range [7.9, 46]", spec.Name, gb)
		}
		if spec.Capacity <= 0 || spec.CostPerGB <= 0 || spec.Channels <= 0 {
			t.Errorf("%s has incomplete spec", spec.Name)
		}
	}
}

func TestKindStrings(t *testing.T) {
	kinds := map[Kind]string{HDD: "hdd", SSD: "ssd", RDMA: "rdma", DPU: "dpu",
		CXL: "cxl", RemoteDRAM: "dram", Kind(42): "unknown"}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestInvalidOpsPanic(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, pcie.Gen4, 16)
	d := h.Attach(SpecTestbedSSD("ssd0"))
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size op did not panic")
		}
	}()
	d.Submit(Op{Size: 0}, nil)
}

// Property: latency ordering across media holds for any op size — DRAM-class
// backends are faster than RDMA, which beats SSD, which beats HDD (random).
func TestMediaLatencyOrderingProperty(t *testing.T) {
	f := func(sizeSeed uint16) bool {
		size := int64(sizeSeed)*64 + int64(units.PageSize)
		measure := func(spec Spec) sim.Duration {
			eng := sim.NewEngine()
			h := NewHost(eng, pcie.Gen5, 16)
			d := h.Attach(spec)
			var lat sim.Duration
			d.Submit(Op{Size: size, Sequential: false}, func(l sim.Duration) { lat = l })
			eng.Run()
			return lat
		}
		dram := measure(SpecRemoteDRAM("dram"))
		rdma := measure(SpecConnectX5("rdma"))
		ssd := measure(SpecTestbedSSD("ssd"))
		hdd := measure(SpecHDD("hdd"))
		return dram < rdma && rdma < ssd && ssd < hdd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(21))}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceAccessors(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, pcie.Gen3, 16)
	d := h.Attach(SpecDiskArray("disk0"))
	if d.Kind() != HDD || d.Name() != "disk0" {
		t.Fatal("metadata accessors wrong")
	}
	if d.SlotLink() == nil || d.MediaLink() == nil {
		t.Fatal("link accessors nil")
	}
	if d.QueueDepth() != 0 || d.InFlight() != 0 {
		t.Fatal("fresh device should be idle")
	}
	d.Submit(Op{Size: units.PageSize, Sequential: true}, nil)
	eng.Run()
	if d.TotalBytes() != float64(units.PageSize) {
		t.Fatalf("TotalBytes=%v", d.TotalBytes())
	}
}

func TestDiskArraySpec(t *testing.T) {
	s := SpecDiskArray("disk")
	if s.Bandwidth.GB() != 2 {
		t.Fatalf("disk array bandwidth %.1f, Table IV says 2 GB/s", s.Bandwidth.GB())
	}
	if s.Kind != HDD || s.Capacity != 2*units.TiB {
		t.Fatal("disk array spec wrong")
	}
}
