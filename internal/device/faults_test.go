package device

import (
	"testing"

	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/units"
)

func faultTestDevice(t *testing.T) (*sim.Engine, *Device) {
	t.Helper()
	eng := sim.NewEngine()
	h := NewHost(eng, pcie.Gen4, 16)
	return eng, h.Attach(SpecConnectX5("rdma0"))
}

func TestFailedDeviceFailsFast(t *testing.T) {
	eng, d := faultTestDevice(t)
	d.Fail()
	var lat sim.Duration
	var err error
	d.SubmitResult(Op{Size: units.PageSize, Sequential: true}, func(l sim.Duration, e error) {
		lat, err = l, e
	})
	eng.Run()
	if err != ErrDown {
		t.Fatalf("err=%v, want ErrDown", err)
	}
	if lat != FailFastLatency {
		t.Fatalf("fail-fast latency %v, want %v", lat, FailFastLatency)
	}
	if d.Failed.Value != 1 || d.Ops.Value != 0 {
		t.Fatalf("counters: failed=%d ops=%d", d.Failed.Value, d.Ops.Value)
	}
	if d.Healthy() || !d.Down() {
		t.Fatal("failed device reports healthy")
	}
}

func TestStalledDeviceDropsSilently(t *testing.T) {
	eng, d := faultTestDevice(t)
	d.Stall()
	called := false
	d.SubmitResult(Op{Size: units.PageSize, Sequential: true}, func(sim.Duration, error) {
		called = true
	})
	eng.Run()
	if called {
		t.Fatal("stalled device completed an op; it must drop silently")
	}
	if d.Dropped.Value != 1 {
		t.Fatalf("dropped=%d, want 1", d.Dropped.Value)
	}
	// Legacy Submit must also not fire its callback.
	d.Submit(Op{Size: units.PageSize, Sequential: true}, func(sim.Duration) { called = true })
	eng.Run()
	if called {
		t.Fatal("Submit fired done on a stalled device")
	}
}

func TestStallRecovery(t *testing.T) {
	eng, d := faultTestDevice(t)
	d.Stall()
	d.Recover()
	var err error
	ok := false
	d.SubmitResult(Op{Size: units.PageSize, Sequential: true}, func(_ sim.Duration, e error) {
		ok, err = true, e
	})
	eng.Run()
	if !ok || err != nil {
		t.Fatalf("recovered device failed: ok=%v err=%v", ok, err)
	}
	if !d.Healthy() {
		t.Fatal("recovered device not healthy")
	}
}

func TestFailWinsOverStallAndRecover(t *testing.T) {
	eng, d := faultTestDevice(t)
	d.Fail()
	d.Stall()   // no-op on a dead device
	d.Recover() // permanent death has no recovery
	if !d.Down() || d.Stalled() {
		t.Fatalf("down=%v stalled=%v, want down only", d.Down(), d.Stalled())
	}
	var err error
	d.SubmitResult(Op{Size: units.PageSize, Sequential: true}, func(_ sim.Duration, e error) { err = e })
	eng.Run()
	if err != ErrDown {
		t.Fatalf("err=%v, want ErrDown after Fail", err)
	}
}

func TestDegradeScalesLatency(t *testing.T) {
	measure := func(lat float64) sim.Duration {
		eng, d := faultTestDevice(t)
		if lat > 1 {
			d.Degrade(lat, 1)
		}
		var got sim.Duration
		d.SubmitResult(Op{Size: units.PageSize, Sequential: true}, func(l sim.Duration, e error) {
			if e != nil {
				t.Fatalf("degraded op failed: %v", e)
			}
			got = l
		})
		eng.Run()
		return got
	}
	base := measure(1)
	slow := measure(4)
	// Base op latency is 4x; the payload streaming part is unchanged, so
	// end-to-end must grow by exactly 3 extra base latencies.
	wantExtra := 3 * SpecConnectX5("x").ReadLatency
	if diff := slow - base - wantExtra; diff > sim.Microsecond || diff < -sim.Microsecond {
		t.Fatalf("degraded latency %v vs base %v, want extra ~%v", slow, base, wantExtra)
	}
}

func TestDegradeScalesBandwidth(t *testing.T) {
	eng, d := faultTestDevice(t)
	full := d.MediaLink().Capacity()
	d.Degrade(1, 0.25)
	if got := d.MediaLink().Capacity(); float64(got) != float64(full)*0.25 {
		t.Fatalf("degraded media capacity %v, want quarter of %v", got, full)
	}
	if d.Healthy() {
		t.Fatal("degraded device reports healthy")
	}
	d.Recover()
	if d.MediaLink().Capacity() != full || !d.Healthy() {
		t.Fatal("recover did not restore bandwidth")
	}
	_ = eng
}

func TestFaultWhileQueuedIsDetected(t *testing.T) {
	// An op admitted while healthy but still waiting for a channel when the
	// device dies must fail, not complete against dead hardware.
	eng := sim.NewEngine()
	h := NewHost(eng, pcie.Gen4, 16)
	spec := SpecTestbedSSD("ssd0")
	spec.Channels = 1
	d := h.Attach(spec)

	// Occupy the single channel with a large op, queue a second, then kill
	// the device while the second is still waiting.
	d.Submit(Op{Size: 64 * units.MiB, Sequential: true}, nil)
	var err error
	fired := false
	d.SubmitResult(Op{Size: units.PageSize, Sequential: true}, func(_ sim.Duration, e error) {
		fired, err = true, e
	})
	eng.After(sim.Microsecond, d.Fail)
	eng.Run()
	if !fired {
		t.Fatal("queued op never completed after device death")
	}
	if err != ErrDown {
		t.Fatalf("queued op err=%v, want ErrDown", err)
	}
}
