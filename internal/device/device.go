// Package device models the far-memory backend hardware the paper evaluates:
// HDDs, NVMe SSDs, RDMA NICs (ConnectX-5/6), DPUs (BlueField-3), CXL memory
// expanders, and host-borrowed remote DRAM.
//
// A Device is a queueing station in front of the PCIe fabric: operations wait
// for one of the device's parallel I/O channels (the paper's tunable "I/O
// width"), pay a per-operation base latency (plus a random-access penalty for
// media with seek/NAND overheads), then stream their payload through the
// device's internal-bandwidth link and its PCIe slot link. Bandwidth sharing
// between in-flight operations — and between devices on the same fabric — is
// handled by the fluid-flow arbiter in package pcie.
package device

import (
	"errors"
	"fmt"

	"repro/internal/invariant"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/units"
)

// Registered invariants for the device model: an op's end-to-end latency can
// never undercut its base service latency (queueing and transfer only add),
// and the payload a device completes can never exceed its rated internal
// bandwidth × elapsed virtual time (each completion may round up to a
// fabric completionEpsilon of bytes, hence the per-op slack).
var (
	ckDevLatency    = invariant.Register("device.op.latency-at-least-base")
	ckDevThroughput = invariant.Register("device.throughput-bound")
)

// ErrDown is the completion error for ops against a dead device: the
// controller (or NIC) aborts the request instead of servicing it.
var ErrDown = errors.New("device: backend down")

// FailFastLatency is how long a dead device takes to reject an op — the
// cost of a controller abort / NIC completion-with-error, far below any
// initiator timeout but not free.
const FailFastLatency = 25 * sim.Microsecond

// Kind classifies the far-memory medium.
type Kind int

// Device kinds evaluated by the paper.
const (
	HDD Kind = iota
	SSD
	RDMA
	DPU
	CXL
	RemoteDRAM
	// PooledCXL is a switch-attached CXL 2.0/3.0 pooled-memory port: same
	// load/store medium as CXL, reached through switch hops and shared with
	// other hosts (see internal/fabric).
	PooledCXL
)

func (k Kind) String() string {
	switch k {
	case HDD:
		return "hdd"
	case SSD:
		return "ssd"
	case RDMA:
		return "rdma"
	case DPU:
		return "dpu"
	case CXL:
		return "cxl"
	case RemoteDRAM:
		return "dram"
	case PooledCXL:
		return "pooled-cxl"
	default:
		return "unknown"
	}
}

// Spec describes a device model's performance envelope.
type Spec struct {
	Name string
	Kind Kind

	// Bandwidth is the device's internal data bandwidth (media or NIC line
	// rate), the number quoted in Fig 1(b).
	Bandwidth units.BytesPerSec

	// ReadLatency/WriteLatency are per-operation base latencies for
	// sequential access at page granularity.
	ReadLatency  sim.Duration
	WriteLatency sim.Duration

	// RandomPenalty is added per op when the access is not sequential with
	// the previous one (HDD seeks, NAND read-around, NIC cache misses).
	RandomPenalty sim.Duration

	// Channels is the default number of parallel I/O channels (queue pairs
	// for RDMA, NVMe queues for SSD). This is the paper's "I/O width" knob.
	Channels int

	// ChannelBandwidth caps the rate of a single in-flight operation: real
	// devices only reach their full bandwidth at queue depth > 1 (NAND plane
	// parallelism, multiple NIC queue pairs). Zero means uncapped.
	ChannelBandwidth units.BytesPerSec

	// Capacity is the usable far-memory capacity the device exposes.
	Capacity int64

	// CostPerGB is the relative hardware cost used by the MEI metric
	// (performance improvement per unit device cost).
	CostPerGB float64

	// SlotGen/SlotLanes describe the PCIe slot the device occupies.
	SlotGen   pcie.Generation
	SlotLanes int
}

// SlotBandwidth reports the usable unidirectional bandwidth of the slot.
func (s Spec) SlotBandwidth() units.BytesPerSec {
	return s.SlotGen.SlotBandwidth(s.SlotLanes)
}

// Op is one I/O operation against a device.
type Op struct {
	Write      bool
	Size       int64
	Sequential bool

	// ID correlates this op with the swap operation that caused it; Stripe
	// is its position among the extent's parallel sub-ops. Both are pure
	// observability plumbing: zero ID (the default) means "uncorrelated" and
	// suppresses the per-stage spans entirely.
	ID     uint64
	Stripe int
}

// Device is an instantiated device attached to a host fabric.
type Device struct {
	spec     Spec
	eng      *sim.Engine
	fabric   *pcie.Fabric
	internal *pcie.Link
	slot     *pcie.Link
	extra    []*pcie.Link // e.g. host root-complex budget

	// Reads and writes occupy separate channel pools, mirroring real
	// hardware (NVMe submission queues, RDMA queue pairs) and PCIe's full
	// duplex: a fault's read is never stuck behind write-back traffic at
	// admission, though both directions still share the media bandwidth.
	readCh  *sim.Resource
	writeCh *sim.Resource

	// Fault state (driven by internal/faults via the Target interface).
	// down: ops fail fast with ErrDown. stalled: ops are silently dropped
	// (only the initiator's timeout notices). latFactor scales base op
	// latency; bandwidth degradation is applied to the media link itself
	// so the fluid-flow arbiter redistributes fairly.
	down      bool
	stalled   bool
	latFactor float64

	// Stats.
	Ops       metrics.Counter
	ReadOps   metrics.Counter
	WriteOps  metrics.Counter
	Failed    metrics.Counter // ops rejected with ErrDown
	Dropped   metrics.Counter // ops silently lost while stalled
	BytesRead float64
	BytesWrit float64
	Latency   metrics.Summary // per-op end-to-end latency, µs

	// Observability handle, resolved once at construction (nil when off).
	rec      *obs.Recorder
	track    string
	obsQueue *metrics.BucketTimeline
}

// New attaches a device with the given spec to a fabric. extraLinks (such as
// the host root-complex budget) are appended to every transfer path so that
// fabric-level contention between devices is modeled.
func New(eng *sim.Engine, fabric *pcie.Fabric, spec Spec, extraLinks ...*pcie.Link) *Device {
	if spec.Channels <= 0 {
		panic(fmt.Sprintf("device %q: non-positive channel count", spec.Name))
	}
	d := &Device{
		spec:     spec,
		eng:      eng,
		fabric:   fabric,
		internal: fabric.NewLink(spec.Name+"/media", spec.Bandwidth),
		slot:     fabric.NewLink(spec.Name+"/slot", spec.SlotBandwidth()),
		extra:    extraLinks,
		readCh:   sim.NewResource(eng, spec.Channels),
		writeCh:  sim.NewResource(eng, spec.Channels),
	}
	d.latFactor = 1
	d.Ops.Name = spec.Name + ".ops"
	d.ReadOps.Name = spec.Name + ".reads"
	d.WriteOps.Name = spec.Name + ".writes"
	d.Failed.Name = spec.Name + ".failed"
	d.Dropped.Name = spec.Name + ".dropped"
	if obs.On {
		if r := obs.Rec(eng); r != nil {
			d.rec = r
			d.track = "dev/" + spec.Name
			d.obsQueue = r.Timeline(d.track+"/queue", obs.DefaultTimelineWidth, obs.ModeMean)
			r.OnSeal(func() {
				now := eng.Now()
				r.Gauge(d.track + "/utilization/media").Set(d.internal.Utilization(now))
				r.Gauge(d.track + "/utilization/slot").Set(d.slot.Utilization(now))
				r.Counter(d.track + "/ops").Add(float64(d.Ops.Value))
				r.Counter(d.track + "/failed").Add(float64(d.Failed.Value))
				r.Counter(d.track + "/dropped").Add(float64(d.Dropped.Value))
				r.Counter(d.track + "/bytes").Add(d.TotalBytes())
			})
		}
	}
	return d
}

// Spec reports the device's specification.
func (d *Device) Spec() Spec { return d.spec }

// Kind reports the device's medium kind.
func (d *Device) Kind() Kind { return d.spec.Kind }

// Name reports the device's name.
func (d *Device) Name() string { return d.spec.Name }

// Channels reports the current I/O width (per direction).
func (d *Device) Channels() int { return d.readCh.Capacity() }

// SetChannels adjusts the I/O width (the paper tunes this online per path).
func (d *Device) SetChannels(n int) {
	d.readCh.Resize(n)
	d.writeCh.Resize(n)
}

// QueueDepth reports operations waiting for a channel in either direction.
func (d *Device) QueueDepth() int { return d.readCh.Waiting() + d.writeCh.Waiting() }

// InFlight reports operations currently holding a channel.
func (d *Device) InFlight() int { return d.readCh.InUse() + d.writeCh.InUse() }

// SlotLink exposes the device's PCIe slot link for utilization reporting.
func (d *Device) SlotLink() *pcie.Link { return d.slot }

// MediaLink exposes the device's internal-bandwidth link.
func (d *Device) MediaLink() *pcie.Link { return d.internal }

// --- fault state (the faults.Target interface) ---

// Fail kills the device permanently: every subsequent op completes fast
// with ErrDown. Data held on the device is considered lost.
func (d *Device) Fail() {
	d.down = true
	d.stalled = false
	if d.rec != nil {
		d.rec.Instant(d.track, "fail", "")
	}
}

// Stall starts a transient outage: ops are silently dropped until Recover.
// Only the initiator's timeout notices — this models RDMA link flaps and
// NVMe controller resets, where requests vanish without a completion.
func (d *Device) Stall() {
	if !d.down {
		d.stalled = true
		if d.rec != nil {
			d.rec.Instant(d.track, "stall", "")
		}
	}
}

// Degrade multiplies base op latency by lat (clamped to >= 1) and scales
// the media-link bandwidth by bw (clamped to (0, 1]); the fluid-flow
// arbiter rebalances all in-flight transfers immediately.
func (d *Device) Degrade(lat, bw float64) {
	if d.down {
		return
	}
	if lat < 1 {
		lat = 1
	}
	if bw <= 0 || bw > 1 {
		bw = 1
	}
	d.latFactor = lat
	d.internal.SetCapacity(units.BytesPerSec(float64(d.spec.Bandwidth) * bw))
	d.fabric.Rebalance()
	if d.rec != nil {
		d.rec.Instant(d.track, "degrade", fmt.Sprintf("lat=%g bw=%g", lat, bw))
	}
}

// Recover restores full health after a Stall or Degrade. A Failed device
// stays down: permanent death has no recovery path short of rebuilding it.
func (d *Device) Recover() {
	if d.down {
		return
	}
	d.stalled = false
	d.latFactor = 1
	d.internal.SetCapacity(d.spec.Bandwidth)
	d.fabric.Rebalance()
	if d.rec != nil {
		d.rec.Instant(d.track, "recover", "")
	}
}

// Down reports whether the device has failed permanently.
func (d *Device) Down() bool { return d.down }

// Stalled reports whether the device is in a transient outage window.
func (d *Device) Stalled() bool { return d.stalled }

// Healthy reports whether the device is fully operational (not down, not
// stalled, not latency- or bandwidth-degraded).
func (d *Device) Healthy() bool {
	return !d.down && !d.stalled && d.latFactor == 1 &&
		d.internal.Capacity() == d.spec.Bandwidth
}

// Submit enqueues an operation; done (if non-nil) fires at completion with
// the end-to-end latency including channel queueing. Under faults, done
// only fires if the op succeeds — callers that need failure notification
// use SubmitResult.
func (d *Device) Submit(op Op, done func(lat sim.Duration)) {
	d.SubmitResult(op, func(lat sim.Duration, err error) {
		if err == nil && done != nil {
			done(lat)
		}
	})
}

// SubmitResult enqueues an operation and reports the outcome: done fires
// with err == nil on success, or err == ErrDown (after FailFastLatency) if
// the device is dead. While the device is stalled the op is dropped and
// done never fires — initiators recover via their own timeout (see
// swap.RetryPolicy).
func (d *Device) SubmitResult(op Op, done func(lat sim.Duration, err error)) {
	if op.Size <= 0 {
		panic(fmt.Sprintf("device %q: op with non-positive size", d.spec.Name))
	}
	if d.stalled {
		d.Dropped.Inc()
		if d.rec != nil {
			d.rec.Instant(d.track, "drop-stalled", "")
		}
		return
	}
	if d.down {
		d.failFast(done)
		return
	}
	start := d.eng.Now()
	if d.obsQueue != nil {
		d.obsQueue.Add(start, float64(d.QueueDepth()))
	}
	ch := d.readCh
	if op.Write {
		ch = d.writeCh
	}
	ch.Acquire(1, func() {
		// Stage spans for correlated ops: wait (channel queueing), arbitrate
		// (base service latency), transfer (fabric streaming). Together with
		// the swap path's stage spans these give the analysis tier an exact
		// decomposition of a swap op's end-to-end latency.
		acquired := d.eng.Now()
		if d.rec != nil && op.ID != 0 {
			d.rec.Span(d.track, "wait", start, obs.DetailOp(op.ID, op.Stripe))
		}
		// The device may have faulted while the op sat in the queue.
		if d.stalled || d.down {
			ch.Release(1)
			if d.down {
				d.failFast(done)
			} else {
				d.Dropped.Inc()
			}
			return
		}
		base := d.spec.ReadLatency
		if op.Write {
			base = d.spec.WriteLatency
		}
		if !op.Sequential {
			base += d.spec.RandomPenalty
		}
		if d.latFactor > 1 {
			base = sim.Duration(float64(base) * d.latFactor)
		}
		d.eng.After(base, func() {
			served := d.eng.Now()
			if d.rec != nil && op.ID != 0 {
				d.rec.Span(d.track, "arbitrate", acquired, obs.DetailOp(op.ID, op.Stripe))
			}
			path := make([]*pcie.Link, 0, 2+len(d.extra))
			path = append(path, d.internal, d.slot)
			path = append(path, d.extra...)
			d.fabric.TransferCapped(op.Size, d.spec.ChannelBandwidth, path, func(at sim.Time) {
				ch.Release(1)
				lat := at.Sub(start)
				d.Ops.Inc()
				if op.Write {
					d.WriteOps.Inc()
					d.BytesWrit += float64(op.Size)
				} else {
					d.ReadOps.Inc()
					d.BytesRead += float64(op.Size)
				}
				if invariant.On {
					ckDevLatency.Assert(lat >= base,
						"op latency %v below base service latency %v", lat, base)
					secs := at.Seconds()
					bound := float64(d.spec.Bandwidth)*secs*(1+1e-6) + 1e-3*float64(d.Ops.Value) + 1
					ckDevThroughput.Assert(d.TotalBytes() <= bound,
						"device %q completed %.0f bytes in %.6fs at %.0f B/s",
						d.spec.Name, d.TotalBytes(), secs, float64(d.spec.Bandwidth))
				}
				d.Latency.Add(lat.Microseconds())
				if d.rec != nil {
					name := "read"
					if op.Write {
						name = "write"
					}
					detail := ""
					if op.ID != 0 {
						detail = obs.DetailOp(op.ID, op.Stripe)
						d.rec.Span(d.track, "transfer", served, detail)
					}
					d.rec.Span(d.track, name, start, detail)
				}
				if done != nil {
					done(lat, nil)
				}
			})
		})
	})
}

func (d *Device) failFast(done func(lat sim.Duration, err error)) {
	d.Failed.Inc()
	if d.rec != nil {
		d.rec.Instant(d.track, "err-down", "")
	}
	if done != nil {
		d.eng.After(FailFastLatency, func() { done(FailFastLatency, ErrDown) })
	}
}

// TotalBytes reports all payload moved through the device.
func (d *Device) TotalBytes() float64 { return d.BytesRead + d.BytesWrit }
