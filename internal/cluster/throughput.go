package cluster

import (
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/task"
)

// AdmissionPolicy decides how much local memory a job needs before it can
// start — the lever behind the task-throughput study (Fig 16).
type AdmissionPolicy int

// Admission policies.
const (
	// FullMemory is the no-far-memory baseline: a job occupies its whole
	// footprint in local DRAM.
	FullMemory AdmissionPolicy = iota
	// FarMemorySLO sizes each job's local share with xDM's console at the
	// job's SLO, offloading the rest to far memory.
	FarMemorySLO
)

// ThroughputResult summarizes one admission-queue run.
type ThroughputResult struct {
	Completed int
	Makespan  sim.Duration
	// Throughput is completed jobs per simulated hour.
	Throughput float64
	// PeakParallel is the maximum concurrently running jobs.
	PeakParallel int
	// MeanLocalRatio is the average admitted local-memory share.
	MeanLocalRatio float64
	// SLOCompliance is the fraction of far-memory jobs whose measured
	// runtime stayed within SLO × the staging reference (QoS guarantee
	// accounting); 1.0 when no far-memory jobs ran.
	SLOCompliance float64
}

// RunThroughput feeds jobs through a single server with serverPages of
// local memory and serverCores cores, admitting FIFO as resources free up,
// and reports the achieved task throughput. Jobs run concurrently and
// contend for the machine's far-memory devices.
func RunThroughput(env baseline.Env, jobs []App, policy AdmissionPolicy, serverPages, serverCores int) ThroughputResult {
	eng := env.Machine.Eng
	type pending struct {
		app      App
		required int
		cores    int
		cfg      task.Config
		ratio    float64
		refRT    int64
	}

	assigned := map[string]int{}
	queue := make([]*pending, 0, len(jobs))
	for _, app := range jobs {
		p := &pending{app: app, cores: app.Cores}
		if p.cores < 1 {
			p.cores = 1
		}
		switch policy {
		case FullMemory:
			p.ratio = 1.0
			// Without far memory the whole footprint must fit.
			p.required = app.Spec.FootprintPages
			// Jobs still need their file pages from storage.
			p.cfg = baseline.Prepare(baseline.LinuxSwap, env, env.Machine.Backend(env.FileBackend), app.Spec, 1.0, app.Seed)
		case FarMemorySLO:
			backendName := pickBackend(env, app, assigned)
			assigned[backendName]++
			be := env.Machine.Backend(backendName)
			setup := baseline.PrepareXDM(env, be, app.Spec, -1, app.SLO, app.Seed)
			p.ratio = setup.Config.LocalRatio
			p.required = int(p.ratio * float64(app.Spec.FootprintPages))
			p.cfg = setup.Config
			p.refRT = baseline.ReferenceRuntime(be.Device().Spec(), app.Spec, app.Seed)
		}
		queue = append(queue, p)
	}

	freePages, freeCores := serverPages, serverCores
	running, completed, peak := 0, 0, 0
	var ratioSum float64
	compliant, judged := 0, 0
	start := eng.Now()

	var admit func()
	admit = func() {
		for len(queue) > 0 {
			head := queue[0]
			if head.required > serverPages {
				// Can never run on this server; count as rejected by
				// skipping (the paper's setup sizes servers to fit).
				queue = queue[1:]
				continue
			}
			if head.required > freePages || head.cores > freeCores {
				return
			}
			queue = queue[1:]
			freePages -= head.required
			freeCores -= head.cores
			running++
			if running > peak {
				peak = running
			}
			ratioSum += head.ratio
			h := head
			task.New(h.cfg).Start(func(st task.Stats) {
				freePages += h.required
				freeCores += h.cores
				running--
				completed++
				if h.refRT > 0 {
					judged++
					if float64(st.Runtime) <= h.app.SLO*1.1*float64(h.refRT) {
						compliant++
					}
				}
				admit()
			})
		}
	}
	admit()
	eng.Run()

	res := ThroughputResult{
		Completed:    completed,
		Makespan:     eng.Now().Sub(start),
		PeakParallel: peak,
	}
	if completed > 0 {
		res.MeanLocalRatio = ratioSum / float64(completed)
	}
	res.SLOCompliance = 1
	if judged > 0 {
		res.SLOCompliance = float64(compliant) / float64(judged)
	}
	if res.Makespan > 0 {
		res.Throughput = float64(completed) / (res.Makespan.Seconds() / 3600)
	}
	return res
}

// pickBackend runs the console's backend selection for one job against the
// machine's catalog, then spreads load across the machine's devices of the
// winning kind: with multiple far-memory backends attached, concurrent jobs
// land on different devices instead of contending on one — the
// multi-backend scale-out this system exists for.
func pickBackend(env baseline.Env, app App, assigned map[string]int) string {
	var opts []core.BackendOption
	for _, name := range env.Machine.BackendNames() {
		opts = append(opts, baseline.OptionFor(env.Machine.Backend(name)))
	}
	f := baseline.Profile(app.Spec, app.Seed)
	priority, _ := core.SelectBackend(opts, f, app.Spec.ComputePerAccess, 0.5)
	if len(priority) == 0 {
		return env.FileBackend
	}
	var winner core.BackendOption
	for _, o := range opts {
		if o.Name == priority[0] {
			winner = o
			break
		}
	}
	// Least-pending device of the winning kind.
	best := priority[0]
	bestLoad := int(^uint(0) >> 1)
	for _, name := range env.Machine.BackendNames() {
		be := env.Machine.Backend(name)
		if baseline.OptionFor(be).Kind != winner.Kind {
			continue
		}
		load := assigned[name] + be.Pending() + be.Device().QueueDepth()
		if load < bestLoad {
			best, bestLoad = name, load
		}
	}
	return best
}
