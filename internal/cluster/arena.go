package cluster

import (
	"fmt"

	"repro/internal/place"
)

// ArenaView is the dispatcher's cached picture of every node's free
// resources in a sharded datacenter arena (see internal/datacenter's Arena).
// The dispatcher runs on its own simulation shard and must never read node
// state synchronously — a cross-shard read would break the conservative
// lookahead contract — so it places against this view, debits it optimistically
// at dispatch time, and credits it back when a node's completion report
// arrives. The view therefore lags reality by the report latency, exactly
// like a real cluster scheduler's heartbeat-fed cache.
type ArenaView struct {
	cores []int
	pages []int

	coresPerNode int
	pagesPerNode int

	// peakPages tracks each node's maximum page commitment, for computing
	// memory-balance effectiveness over the run's high-water marks.
	peakPages []int

	// running counts tasks reserved-but-not-released per node, the warmth
	// and load-pressure inputs placement policies read.
	running []int

	// overcommitSlack is the extra pages per node an oversubscribing
	// placement policy may commit beyond physical capacity (0 = none).
	// Free pages may then go negative down to -overcommitSlack.
	overcommitSlack int
}

// NewArenaView builds a view of n identical nodes.
func NewArenaView(n, coresPerNode, pagesPerNode int) *ArenaView {
	if n <= 0 {
		panic("cluster: arena view needs at least one node")
	}
	v := &ArenaView{
		cores:        make([]int, n),
		pages:        make([]int, n),
		coresPerNode: coresPerNode,
		pagesPerNode: pagesPerNode,
		peakPages:    make([]int, n),
		running:      make([]int, n),
	}
	for i := range v.cores {
		v.cores[i] = coresPerNode
		v.pages[i] = pagesPerNode
	}
	return v
}

// Nodes reports the number of nodes in the view.
func (v *ArenaView) Nodes() int { return len(v.cores) }

// FreeCores reports node i's free cores.
func (v *ArenaView) FreeCores(i int) int { return v.cores[i] }

// FreePages reports node i's free pages (negative under oversubscription).
func (v *ArenaView) FreePages(i int) int { return v.pages[i] }

// Running reports how many tasks are reserved-but-not-released on node i.
func (v *ArenaView) Running(i int) int { return v.running[i] }

// SetOvercommit grants every node the page slack an oversubscribing policy
// of the given factor may commit beyond capacity. The slack follows the same
// rounding as the policy's memory predicate (place.OvercommitSlack), so
// Reserve accepts exactly the placements the policy approves.
func (v *ArenaView) SetOvercommit(factor float64) {
	v.overcommitSlack = place.OvercommitSlack(factor, v.pagesPerNode)
}

// StrandedPages reports the memory currently stranded for a task needing
// minCores: free pages sitting on nodes whose cores are too depleted to
// host it. Core-exhausted memory is the balance failure placement policies
// compete on — it is provisioned, unused, and unreachable.
func (v *ArenaView) StrandedPages(minCores int) int {
	stranded := 0
	for i := range v.cores {
		if v.cores[i] < minCores && v.pages[i] > 0 {
			stranded += v.pages[i]
		}
	}
	return stranded
}

// TotalPages reports the fleet's aggregate page capacity.
func (v *ArenaView) TotalPages() int { return v.pagesPerNode * len(v.pages) }

// Place picks a node for a task needing the given resources, or -1 when no
// node fits. The policy is worst-fit spreading on cores (the node with the
// most free cores wins; free pages break ties, then the lowest index), which
// levels memory pressure across the fleet — the placement half of the
// paper's balance story, with the lending half layered on by MBE balancing.
// Deterministic by construction: no randomness, stable tie-breaks.
func (v *ArenaView) Place(cores, pages int) int {
	best := -1
	for i := range v.cores {
		if v.cores[i] < cores || v.pages[i] < pages {
			continue
		}
		if best < 0 || v.cores[i] > v.cores[best] ||
			(v.cores[i] == v.cores[best] && v.pages[i] > v.pages[best]) {
			best = i
		}
	}
	return best
}

// Reserve debits node i for a dispatched task. Overdrawing panics: the
// dispatcher must only reserve what the placement policy said fits (free
// pages may go negative only down to the configured overcommit slack).
func (v *ArenaView) Reserve(i, cores, pages int) {
	v.cores[i] -= cores
	v.pages[i] -= pages
	if v.cores[i] < 0 || v.pages[i] < -v.overcommitSlack {
		panic(fmt.Sprintf("cluster: arena view node %d overdrawn (%d cores, %d pages free)",
			i, v.cores[i], v.pages[i]))
	}
	v.running[i]++
	if used := v.pagesPerNode - v.pages[i]; used > v.peakPages[i] {
		v.peakPages[i] = used
	}
}

// Release credits node i after a completion report. Releasing more than was
// reserved panics.
func (v *ArenaView) Release(i, cores, pages int) {
	v.cores[i] += cores
	v.pages[i] += pages
	if v.cores[i] > v.coresPerNode || v.pages[i] > v.pagesPerNode {
		panic(fmt.Sprintf("cluster: arena view node %d released above capacity (%d cores, %d pages free)",
			i, v.cores[i], v.pages[i]))
	}
	if v.running[i] == 0 {
		panic(fmt.Sprintf("cluster: arena view node %d released with no running tasks", i))
	}
	v.running[i]--
}

// Utilizations snapshots the current memory utilization per node.
func (v *ArenaView) Utilizations() []float64 {
	out := make([]float64, len(v.pages))
	for i := range v.pages {
		out[i] = float64(v.pagesPerNode-v.pages[i]) / float64(v.pagesPerNode)
	}
	return out
}

// PeakUtilizations reports each node's high-water memory utilization, the
// input to MBE over the run (instantaneous snapshots at the end of a run
// are mostly idle and say nothing about balance under load).
func (v *ArenaView) PeakUtilizations() []float64 {
	out := make([]float64, len(v.peakPages))
	for i := range v.peakPages {
		out[i] = float64(v.peakPages[i]) / float64(v.pagesPerNode)
	}
	return out
}
