package cluster

import (
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/place"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workload"
)

// App is one application to place (Algorithm 1's input).
type App struct {
	Spec  workload.Spec
	SLO   float64
	Seed  int64
	Cores int
}

// Placement describes where an app landed and with what configuration.
type Placement struct {
	VM       *vm.VM
	Decision core.Decision
	// How the VM was obtained, for overhead accounting.
	Via PlacementKind
}

// PlacementKind classifies Algorithm 1's outcome branches.
type PlacementKind int

// Placement branches, in Algorithm 1's preference order.
const (
	ViaOnlineVM PlacementKind = iota // online VM already on the right backend
	ViaFreeVM                        // idle VM already on the right backend (warm start)
	ViaSwitch                        // idle VM switched to the right backend
	ViaCreate                        // newly created VM
	ViaNone                          // no capacity
)

func (k PlacementKind) String() string {
	switch k {
	case ViaOnlineVM:
		return "online-vm"
	case ViaFreeVM:
		return "free-vm"
	case ViaSwitch:
		return "switched-vm"
	case ViaCreate:
		return "created-vm"
	default:
		return "unplaced"
	}
}

// Dispatcher implements Algorithm 1: page feature extraction, backend
// selection, parameter optimization, then VM placement through a pluggable
// placement policy (internal/place). The default policy, alg1, reconstructs
// Algorithm 1's original placement loops exactly: online VM on the chosen
// backend, then a free VM on it, then a switchable free VM — first match in
// VM order within each preference tier.
type Dispatcher struct {
	Env  baseline.Env
	opts []core.BackendOption

	// Policy selects the placement policy; nil means the built-in alg1
	// policy (the paper's Algorithm 1).
	Policy *place.Policy

	// Gate, when set, is consulted per backend during selection; a false
	// return removes the backend from the candidate set exactly like
	// system pressure does. The serving loop installs its circuit
	// breakers here, so an open circuit stops new placements without the
	// dispatcher knowing anything about breaker state machines.
	Gate func(backend string) bool

	// MaxTasksPerVM, when positive, bounds how many tasks may run
	// concurrently on one VM. Algorithm 1's closed-loop grids leave it
	// zero (unbounded, the paper's setting); an open-loop server sets it
	// so that offered load beyond fleet capacity queues at the front door
	// instead of piling onto the fleet and stretching every task.
	MaxTasksPerVM int

	// Stats per branch.
	Placed       map[PlacementKind]int
	Rejected     int
	Redispatched int
}

// defaultPolicy is Algorithm 1's placement, shared by every dispatcher that
// does not override Policy. Policies are immutable after construction, so
// sharing one instance across concurrent grid cells is safe.
var defaultPolicy = place.Builtin("alg1")

// NewDispatcher builds a dispatcher over the machine's registered backends.
func NewDispatcher(env baseline.Env) *Dispatcher {
	d := &Dispatcher{Env: env, Placed: make(map[PlacementKind]int)}
	for _, name := range env.Machine.BackendNames() {
		d.opts = append(d.opts, baseline.OptionFor(env.Machine.Backend(name)))
	}
	return d
}

// systemPressure marks options unavailable when their device is saturated
// (queue deeper than 4x its width), Algorithm 1's system_pressure input —
// extended with health: a dead or stalled device is never a placement
// target, so unhealthy donors drop out of selection automatically.
func (d *Dispatcher) systemPressure() []core.BackendOption {
	opts := make([]core.BackendOption, len(d.opts))
	copy(opts, d.opts)
	for i := range opts {
		dev := d.Env.Machine.Device(opts[i].Name)
		if dev == nil {
			continue
		}
		if dev.Down() || dev.Stalled() || dev.QueueDepth() > 4*dev.Channels() {
			opts[i].Available = false
		}
	}
	if d.Gate != nil {
		for i := range opts {
			if opts[i].Available && !d.Gate(opts[i].Name) {
				opts[i].Available = false
			}
		}
	}
	return opts
}

// accepts reports whether v can host app under the dispatcher's
// concurrency bound.
func (d *Dispatcher) accepts(v *vm.VM, app App) bool {
	if d.MaxTasksPerVM > 0 && v.ActiveTasks >= d.MaxTasksPerVM {
		return false
	}
	return v.Accept(app.Cores, app.Spec.FootprintPages)
}

// vmPages is the default VM memory size in pages (footprint-scaled).
const vmPages = 8 * workload.PagesPerGiB

// vmCores is the default VM vCPU count.
const vmCores = 2

// Dispatch places app per Algorithm 1 and calls ready once the hosting VM
// is available (immediately for warm placements; after the switch or boot
// otherwise). It returns the placement synchronously.
func (d *Dispatcher) Dispatch(app App, ready func(Placement)) Placement {
	// Lines 2-4: feature extraction, backend selection, parameter
	// optimization.
	f := baseline.Profile(app.Spec, app.Seed)
	priority, mei := core.SelectBackend(d.systemPressure(), f, app.Spec.ComputePerAccess, 0.5)
	if len(priority) == 0 {
		d.Rejected++
		return Placement{Via: ViaNone}
	}
	backend := priority[0]
	var opt core.BackendOption
	for _, o := range d.opts {
		if o.Name == backend {
			opt = o
			break
		}
	}
	localRatio := core.MinLocalRatio(opt, f, app.Spec.ComputePerAccess, app.SLO)
	g, w := core.TuneTransferBudget(opt, f, int(localRatio*float64(app.Spec.FootprintPages)))
	decision := core.Decision{
		Backend: backend, Priority: priority, MEI: mei,
		GranularityPages: g, Width: w, LocalRatio: localRatio,
		NUMA: core.ChooseNUMA(f, app.Spec.ComputePerAccess), UseTHP: g >= 64,
	}

	finish := func(v *vm.VM, via PlacementKind) Placement {
		v.BeginTask()
		d.Placed[via]++
		return Placement{VM: v, Decision: decision, Via: via}
	}

	// Lines 5-20: VM placement, run through the placement policy. The
	// dispatcher projects every VM into a policy candidate; Tier encodes
	// Algorithm 1's preference classes (3 = online on the chosen backend,
	// 2 = free on it, 1 = free and switchable, 0 = incompatible — online on
	// another backend, or booting), so the default alg1 policy (score =
	// tier, ties to the lowest VM index) reproduces the original
	// first-match loops exactly. Other policies reorder preference but
	// never widen feasibility: the predicate chain keeps every candidate
	// inside the same accepts/compatibility envelope the loops enforced.
	vms := d.Env.Machine.VMs()
	cands := make([]place.Candidate, len(vms))
	for i, v := range vms {
		tier := 0
		switch {
		case v.State() == vm.Online && v.ActiveBackend() == backend:
			tier = 3
		case v.State() == vm.Free && v.ActiveBackend() == backend:
			tier = 2
		case v.State() == vm.Free:
			tier = 1
		}
		cands[i] = place.Candidate{
			ID:         i,
			FreeCores:  v.Cores,
			FreePages:  v.Pages,
			TotalCores: v.Cores,
			TotalPages: v.Pages,
			Load:       v.ActiveTasks,
			Tier:       tier,
			Healthy:    true,
			Accepts:    d.accepts(v, app),
		}
	}
	pol := d.Policy
	if pol == nil {
		pol = defaultPolicy
	}
	req := place.Request{Cores: app.Cores, Pages: app.Spec.FootprintPages}
	for {
		i := pol.Place(req, cands)
		if i < 0 {
			break
		}
		v := vms[i]
		if v.ActiveBackend() == backend {
			via := ViaFreeVM
			if v.State() == vm.Online {
				via = ViaOnlineVM
			}
			p := finish(v, via)
			if ready != nil {
				d.Env.Machine.Eng.Immediately(func() { ready(p) })
			}
			return p
		}
		var p Placement
		err := v.SwitchBackend(backend, func() {
			if ready != nil {
				ready(p)
			}
		})
		if err != nil {
			// Backend vanished between selection and switch: drop the VM
			// from this placement and re-run the policy, which continues
			// with the next-best candidate — the loop-based dispatcher's
			// `continue` behavior.
			cands[i].Accepts = false
			continue
		}
		p = finish(v, ViaSwitch)
		return p
	}
	// Lines 21-25: create a VM if the host has resources.
	cores, pages := vmCores, vmPages
	if cores < app.Cores {
		cores = app.Cores
	}
	if pages < app.Spec.FootprintPages {
		pages = app.Spec.FootprintPages
	}
	if v := d.Env.Machine.CreateVM("vm-auto", cores, pages, []string{backend}, nil); v != nil {
		p := finish(v, ViaCreate)
		// Boot completion flips the VM to Free; ready fires then.
		d.Env.Machine.Eng.After(vm.VMBootCost+sim.Second, func() {
			if ready != nil {
				ready(p)
			}
		})
		return p
	}
	d.Rejected++
	return Placement{Via: ViaNone}
}

// Release marks a task completed on its VM.
func (d *Dispatcher) Release(p Placement) {
	if p.VM != nil {
		p.VM.EndTask()
	}
}

// Redispatch re-places an app whose placement was invalidated by a failure
// (its backend died or its donor crashed): the old placement is released
// and the app runs Algorithm 1 again. Because systemPressure marks dead and
// stalled devices unavailable, the new placement cannot land on the failed
// backend.
func (d *Dispatcher) Redispatch(app App, old Placement, ready func(Placement)) Placement {
	d.Release(old)
	d.Redispatched++
	return d.Dispatch(app, ready)
}
