// Package cluster implements the data-center layer: the Algorithm 1
// application dispatcher over VM fleets, the SLO-constrained admission
// runner behind the task-throughput study (Fig 16), and the memory balance
// effectiveness (MBE) metric of the scalability study (Fig 19).
package cluster

// MBE computes the paper's memory balance effectiveness for a cluster
// utilization snapshot and thresholds alpha <= beta:
//
//	MBE = C% × (c̄ − β) − A% × (ā − α)
//
// where A% of servers have low utilization (< alpha, average ā), C% have
// high utilization (> beta, average c̄), and the middle B% do not adapt.
// The first term is the pressure multi-backend far memory can drain from
// hot servers; the second (ā−α is negative) is the spare capacity cold
// servers can absorb. Higher is better.
func MBE(utils []float64, alpha, beta float64) float64 {
	if beta < alpha {
		alpha, beta = beta, alpha
	}
	n := float64(len(utils))
	if n == 0 {
		return 0
	}
	var aCount, cCount float64
	var aSum, cSum float64
	for _, u := range utils {
		switch {
		case u < alpha:
			aCount++
			aSum += u
		case u > beta:
			cCount++
			cSum += u
		}
	}
	mbe := 0.0
	if cCount > 0 {
		mbe += (cCount / n) * (cSum/cCount - beta)
	}
	if aCount > 0 {
		mbe -= (aCount / n) * (aSum/aCount - alpha)
	}
	return mbe
}

// Balance simulates multi-backend far-memory balancing: hot servers (> beta)
// offload their excess onto cold servers' (< alpha) headroom, bounded by the
// total spare capacity. It returns the post-balancing utilizations and the
// share of total pressure actually moved.
func Balance(utils []float64, alpha, beta float64) (balanced []float64, moved float64) {
	if beta < alpha {
		alpha, beta = beta, alpha
	}
	balanced = make([]float64, len(utils))
	copy(balanced, utils)

	var spare, excess float64
	for _, u := range utils {
		if u < alpha {
			spare += alpha - u
		} else if u > beta {
			excess += u - beta
		}
	}
	if excess == 0 || spare == 0 {
		return balanced, 0
	}
	move := excess
	if move > spare {
		move = spare
	}
	// Drain hot servers proportionally to their excess; fill cold ones
	// proportionally to their headroom.
	for i, u := range balanced {
		if u > beta {
			balanced[i] = u - (u-beta)/excess*move
		} else if u < alpha {
			balanced[i] = u + (alpha-u)/spare*move
		}
	}
	return balanced, move / excess
}

// MBEImprovement reports the improvement the balancing realizes at the
// given thresholds: the drained pressure per server, as a percentage of
// full utilization — the quantity plotted in Fig 19's contours.
func MBEImprovement(utils []float64, alpha, beta float64) float64 {
	before := MBE(utils, alpha, beta)
	balanced, _ := Balance(utils, alpha, beta)
	after := MBE(balanced, alpha, beta)
	return before - after
}
