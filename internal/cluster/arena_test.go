package cluster

import (
	"reflect"
	"testing"
)

func TestArenaViewPlaceSpreads(t *testing.T) {
	v := NewArenaView(3, 4, 100)
	// Worst-fit on cores: placements rotate while capacity is equal.
	got := []int{}
	for i := 0; i < 3; i++ {
		n := v.Place(1, 10)
		got = append(got, n)
		v.Reserve(n, 1, 10)
	}
	if want := []int{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("placements %v, want %v", got, want)
	}
	// Node 1 freed first becomes the emptiest and wins the next placement.
	v.Release(1, 1, 10)
	if n := v.Place(1, 10); n != 1 {
		t.Fatalf("placed on %d, want the emptiest node 1", n)
	}
}

func TestArenaViewPlaceRespectsLimits(t *testing.T) {
	v := NewArenaView(2, 2, 100)
	if n := v.Place(3, 10); n != -1 {
		t.Fatalf("placed a 3-core task on 2-core nodes (node %d)", n)
	}
	if n := v.Place(1, 101); n != -1 {
		t.Fatalf("placed a 101-page task on 100-page nodes (node %d)", n)
	}
	v.Reserve(0, 2, 100)
	v.Reserve(1, 2, 100)
	if n := v.Place(1, 1); n != -1 {
		t.Fatalf("placed on a full cluster (node %d)", n)
	}
}

func TestArenaViewAccountingPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("overdraw", func() {
		v := NewArenaView(1, 2, 10)
		v.Reserve(0, 3, 5)
	})
	mustPanic("over-release", func() {
		v := NewArenaView(1, 2, 10)
		v.Release(0, 1, 1)
	})
	mustPanic("empty view", func() { NewArenaView(0, 1, 1) })
}

func TestArenaViewUtilizations(t *testing.T) {
	v := NewArenaView(2, 4, 100)
	v.Reserve(0, 1, 50)
	u := v.Utilizations()
	if u[0] != 0.5 || u[1] != 0 {
		t.Fatalf("utilizations %v", u)
	}
	// Peak survives release.
	v.Reserve(0, 1, 25)
	v.Release(0, 2, 75)
	p := v.PeakUtilizations()
	if p[0] != 0.75 || p[1] != 0 {
		t.Fatalf("peaks %v", p)
	}
	if got := v.Utilizations()[0]; got != 0 {
		t.Fatalf("node 0 utilization %v after full release", got)
	}
	if v.Nodes() != 2 {
		t.Fatalf("Nodes = %d", v.Nodes())
	}
}
