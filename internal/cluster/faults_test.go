package cluster

import (
	"testing"

	"repro/internal/clustertrace"
	"repro/internal/sim"
	"repro/internal/vm"
)

// dispatchApp is a small app that any healthy backend can host.
func dispatchApp() App {
	return App{Spec: friendlySpec(), SLO: 1.5, Seed: 1, Cores: 1}
}

func TestDispatchAvoidsDeadBackend(t *testing.T) {
	eng := sim.NewEngine()
	env := clusterEnv(eng)
	d := NewDispatcher(env)
	app := dispatchApp()

	// Learn the healthy first choice, then kill that device.
	p := d.Dispatch(app, nil)
	if p.Via == ViaNone {
		t.Fatal("baseline dispatch rejected the app")
	}
	first := p.Decision.Backend
	d.Release(p)
	env.Machine.Device(first).Fail()

	p2 := d.Dispatch(app, nil)
	if p2.Via == ViaNone {
		t.Fatal("dispatch rejected app despite healthy alternatives")
	}
	if p2.Decision.Backend == first {
		t.Fatalf("dispatch placed app on dead backend %q", first)
	}
}

func TestDispatchAvoidsStalledBackendUntilRecovery(t *testing.T) {
	eng := sim.NewEngine()
	env := clusterEnv(eng)
	d := NewDispatcher(env)
	app := dispatchApp()

	p := d.Dispatch(app, nil)
	first := p.Decision.Backend
	d.Release(p)
	dev := env.Machine.Device(first)
	dev.Stall()
	p2 := d.Dispatch(app, nil)
	if p2.Decision.Backend == first {
		t.Fatalf("dispatch placed app on stalled backend %q", first)
	}
	// Once the outage ends, the backend is eligible again.
	dev.Recover()
	d.Release(p2)
	p3 := d.Dispatch(app, nil)
	if p3.Decision.Backend != first {
		t.Fatalf("recovered backend %q not re-selected (got %q)", first, p3.Decision.Backend)
	}
}

func TestRedispatchMovesOffFailedBackend(t *testing.T) {
	eng := sim.NewEngine()
	env := clusterEnv(eng)
	d := NewDispatcher(env)
	app := dispatchApp()

	p := d.Dispatch(app, nil)
	if p.Via == ViaNone || p.VM == nil {
		t.Fatal("initial dispatch failed")
	}
	failed := p.Decision.Backend
	env.Machine.Device(failed).Fail()

	p2 := d.Redispatch(app, p, nil)
	if p2.Via == ViaNone {
		t.Fatal("redispatch rejected the app")
	}
	if p2.Decision.Backend == failed {
		t.Fatalf("redispatch landed back on dead backend %q", failed)
	}
	if d.Redispatched != 1 {
		t.Fatalf("Redispatched=%d, want 1", d.Redispatched)
	}
	if p.VM != nil && p.VM.State() == vm.Online && p2.VM == p.VM && p2.Decision.Backend == failed {
		t.Fatal("old placement still occupies its VM on the dead backend")
	}
}

func TestBalanceSimExcludesDeadMachines(t *testing.T) {
	cfg := BalanceSimConfig{
		Machines:        32,
		PagesPerMachine: 1 << 18,
		Profile:         clustertrace.Alibaba2018(),
		Alpha:           0.4,
		Beta:            0.8,
		Seed:            3,
	}
	healthy := RunBalanceSim(cfg)
	if healthy.DonorMachines == 0 || healthy.SourceMachines == 0 {
		t.Fatal("scenario has no balancing work; pick another seed")
	}

	// Kill the emptiest machine — the most valuable donor.
	deadIdx := 0
	for i, u := range healthy.Before {
		if u < healthy.Before[deadIdx] {
			deadIdx = i
		}
	}
	cfg.Dead = []int{deadIdx}
	lame := RunBalanceSim(cfg)

	if lame.DeadExcluded != 1 {
		t.Fatalf("DeadExcluded=%d, want 1", lame.DeadExcluded)
	}
	if lame.After[deadIdx] != lame.Before[deadIdx] {
		t.Fatalf("dead machine's utilization changed: %.3f -> %.3f",
			lame.Before[deadIdx], lame.After[deadIdx])
	}
	// With the best donor gone, the balancer cannot do better.
	if lame.MBEAfter < healthy.MBEAfter-1e-9 {
		t.Fatalf("losing the best donor improved MBE (%.4f < %.4f)",
			lame.MBEAfter, healthy.MBEAfter)
	}

	// Bogus or duplicate indices are ignored rather than panicking.
	cfg.Dead = []int{-1, 99999, deadIdx, deadIdx}
	dup := RunBalanceSim(cfg)
	if dup.DeadExcluded != 1 {
		t.Fatalf("DeadExcluded=%d with duplicate/out-of-range entries, want 1", dup.DeadExcluded)
	}
}
