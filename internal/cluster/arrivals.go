package cluster

import (
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/place"
	"repro/internal/sim"
	"repro/internal/task"
)

// ArrivalSimConfig drives Algorithm 1 with a stream of application
// arrivals, the way a production front-end would: apps arrive with
// exponential interarrival times, are dispatched onto the VM fleet (warm
// start, backend switch, or VM create), run to completion, and release
// their VM.
type ArrivalSimConfig struct {
	// Templates is the pool of application shapes; arrivals cycle through
	// it pseudo-randomly.
	Templates []App
	// Arrivals is the number of applications submitted.
	Arrivals int
	// MeanInterarrival is the exponential arrival spacing.
	MeanInterarrival sim.Duration
	Seed             int64
	// Policy overrides the dispatcher's placement policy (nil = alg1).
	Policy *place.Policy
}

// ArrivalSimResult summarizes the run.
type ArrivalSimResult struct {
	Placed    map[PlacementKind]int
	Rejected  int
	Completed int
	// Switches counts backend switches performed across the fleet.
	Switches uint64
	// MeanPlacementDelay is the mean placement delay over DelaySamples.
	//
	// Placement delay is defined as submission → VM-ready: the span from
	// the instant an app arrives to the instant its hosting VM is ready to
	// run it (immediately for warm placements, after the switch or boot
	// otherwise). Each app contributes exactly one sample, on the first
	// placement that reaches VM-ready — a redispatch after a failure does
	// not restart or re-count the measurement. Rejected apps never reach
	// VM-ready and contribute no sample (they are visible in Rejected, not
	// silently folded into the mean).
	MeanPlacementDelay sim.Duration
	// DelaySamples is the number of apps measured into MeanPlacementDelay.
	DelaySamples int
	// Makespan is submission of the first app → last completion.
	Makespan sim.Duration
	// FleetSize is the number of VMs alive at the end.
	FleetSize int
}

// readyOnce wraps a placement-ready callback so it forwards at most once.
// Dispatch fires ready exactly once per call, but an app that is
// re-dispatched after a failure passes the same callback to Dispatch again
// — without the guard its placement delay would be double-counted.
func readyOnce(fn func(Placement)) func(Placement) {
	fired := false
	return func(pl Placement) {
		if fired {
			return
		}
		fired = true
		fn(pl)
	}
}

// RunArrivalSim executes the arrival stream against env's machine. The
// machine should have its backends attached; pre-booting warm VMs is the
// caller's choice (see AblationWarmStart for the effect).
func RunArrivalSim(env baseline.Env, cfg ArrivalSimConfig) ArrivalSimResult {
	eng := env.Machine.Eng
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := NewDispatcher(env)
	d.Policy = cfg.Policy

	res := ArrivalSimResult{}
	var delaySum sim.Duration
	var delayed int

	var submit func(i int)
	submit = func(i int) {
		if i >= cfg.Arrivals {
			return
		}
		app := cfg.Templates[rng.Intn(len(cfg.Templates))]
		app.Seed = cfg.Seed + int64(i)
		submitted := eng.Now()

		d.Dispatch(app, readyOnce(func(pl Placement) {
			delaySum += eng.Now().Sub(submitted)
			delayed++
			// Run the app on its VM's active backend with the console's
			// decided parameters.
			be := env.Machine.Backend(pl.VM.ActiveBackend())
			setup := baseline.PrepareXDM(env, be, app.Spec, pl.Decision.LocalRatio, app.SLO, app.Seed)
			setupCfg := setup.Config
			setupCfg.SwapPath = pl.VM.Path()
			task.New(setupCfg).Start(func(task.Stats) {
				res.Completed++
				d.Release(pl)
			})
		}))
		// Schedule the next arrival.
		gap := sim.Duration(rng.ExpFloat64() * float64(cfg.MeanInterarrival))
		if gap < 1 {
			gap = 1
		}
		eng.After(gap, func() { submit(i + 1) })
	}
	eng.Immediately(func() { submit(0) })
	eng.Run()

	res.Placed = d.Placed
	res.Rejected = d.Rejected
	res.DelaySamples = delayed
	if delayed > 0 {
		res.MeanPlacementDelay = delaySum / sim.Duration(delayed)
	}
	res.Makespan = sim.Duration(eng.Now())
	res.FleetSize = len(env.Machine.VMs())
	for _, v := range env.Machine.VMs() {
		res.Switches += v.Switches
	}
	return res
}

// WarmFleet pre-boots one VM per registered backend with the given
// resources, returning once they are all Free.
func WarmFleet(env baseline.Env, cores, pages int) {
	for _, name := range env.Machine.BackendNames() {
		env.Machine.CreateVM("warm-"+name, cores, pages, []string{name}, nil)
	}
	env.Machine.Eng.Run()
}
