package cluster

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/device"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/vm"
)

// tinyEnv is a machine so small that VM creation fails once a couple of VMs
// exist, forcing arrival rejections.
func tinyEnv(eng *sim.Engine) baseline.Env {
	m := vm.NewMachine(eng, pcie.Gen3, 16, 4, 6000)
	m.AttachDevice(device.SpecTestbedSSD("ssd"))
	return baseline.Env{Machine: m, FileBackend: "ssd"}
}

// TestArrivalSimRejectedAppsNotInDelay is the regression test for the
// placement-delay definition: rejected apps (no VM-ready instant exists)
// must contribute no sample, and every placed app contributes exactly one —
// DelaySamples must equal the number of placements, never the number of
// arrivals.
func TestArrivalSimRejectedAppsNotInDelay(t *testing.T) {
	eng := sim.NewEngine()
	env := tinyEnv(eng)
	res := RunArrivalSim(env, ArrivalSimConfig{
		Templates:        []App{{Spec: friendlySpec(), SLO: 1.6, Cores: 1}},
		Arrivals:         16,
		MeanInterarrival: 1 * sim.Millisecond,
		Seed:             11,
	})
	if res.Rejected == 0 {
		t.Fatal("scenario did not produce rejections; shrink the machine")
	}
	placed := 0
	for _, n := range res.Placed {
		placed += n
	}
	if placed+res.Rejected != 16 {
		t.Fatalf("placement accounting: %d placed + %d rejected != 16", placed, res.Rejected)
	}
	if res.DelaySamples != placed {
		t.Fatalf("delay samples %d != placed %d (rejected apps leaked into the mean, or placed apps were skipped)",
			res.DelaySamples, placed)
	}
	if res.MeanPlacementDelay < 0 {
		t.Fatalf("negative mean placement delay %v", res.MeanPlacementDelay)
	}
}

// TestReadyOnceGuardsRedispatch proves the double-count hazard the guard
// exists for: an app re-dispatched after a failure passes the same ready
// callback to Dispatch a second time; without readyOnce the app's placement
// delay would be measured twice (the second time spanning submission →
// second VM-ready, inflating both the sample count and the sum).
func TestReadyOnceGuardsRedispatch(t *testing.T) {
	eng := sim.NewEngine()
	env := clusterEnv(eng)
	for _, name := range env.Machine.BackendNames() {
		env.Machine.CreateVM("vm-"+name, 4, 4096, []string{name}, nil)
	}
	eng.Run()

	d := NewDispatcher(env)
	app := App{Spec: friendlySpec(), SLO: 1.4, Seed: 1, Cores: 1}

	samples := 0
	ready := readyOnce(func(Placement) { samples++ })
	first := d.Dispatch(app, ready)
	eng.Run()
	if first.Via == ViaNone {
		t.Fatal("first dispatch failed")
	}
	if samples != 1 {
		t.Fatalf("samples after first placement: %d", samples)
	}
	// The placement's backend fails; the app is re-dispatched with the
	// same callback, exactly as a failure-recovery loop would do.
	second := d.Redispatch(app, first, ready)
	eng.Run()
	if second.Via == ViaNone {
		t.Fatal("redispatch failed")
	}
	if samples != 1 {
		t.Fatalf("redispatch double-counted the delay sample: %d samples", samples)
	}
	if d.Redispatched != 1 {
		t.Fatalf("redispatch counter %d", d.Redispatched)
	}
}

// TestDispatcherMaxTasksPerVM pins the serving-mode concurrency bound: with
// MaxTasksPerVM set, a VM at the bound stops accepting placements, and with
// no other capacity the dispatch is refused instead of oversubscribing.
func TestDispatcherMaxTasksPerVM(t *testing.T) {
	eng := sim.NewEngine()
	m := vm.NewMachine(eng, pcie.Gen3, 16, 4, 6000)
	m.AttachDevice(device.SpecTestbedSSD("ssd"))
	env := baseline.Env{Machine: m, FileBackend: "ssd"}
	m.CreateVM("only", 4, 4096, []string{"ssd"}, nil)
	eng.Run()

	d := NewDispatcher(env)
	d.MaxTasksPerVM = 2
	app := App{Spec: friendlySpec(), SLO: 1.6, Cores: 1}
	p1 := d.Dispatch(app, nil)
	p2 := d.Dispatch(app, nil)
	if p1.Via == ViaNone || p2.Via == ViaNone {
		t.Fatalf("first two placements refused: %v, %v", p1.Via, p2.Via)
	}
	if p1.VM != p2.VM {
		t.Fatal("expected both tasks on the single VM")
	}
	// Third task: the sole VM is at its bound and the host has no room for
	// another VM → refused.
	p3 := d.Dispatch(app, nil)
	if p3.Via != ViaNone {
		t.Fatalf("third placement via %v, want refusal at the concurrency bound", p3.Via)
	}
	// Releasing one task re-opens the slot.
	d.Release(p1)
	p4 := d.Dispatch(app, nil)
	if p4.Via == ViaNone {
		t.Fatal("placement refused after a slot freed")
	}
}

// TestDispatcherGateExcludesBackend pins the breaker hook: a gate returning
// false for a backend removes it from selection exactly like pressure.
func TestDispatcherGateExcludesBackend(t *testing.T) {
	eng := sim.NewEngine()
	env := clusterEnv(eng)
	for _, name := range env.Machine.BackendNames() {
		env.Machine.CreateVM("vm-"+name, 4, 4096, []string{name}, nil)
	}
	eng.Run()

	d := NewDispatcher(env)
	app := App{Spec: friendlySpec(), SLO: 1.4, Seed: 1, Cores: 1}
	chosen := d.Dispatch(app, nil).Decision.Backend
	if chosen == "" {
		t.Fatal("ungated dispatch failed")
	}

	// Gate out the chosen backend; the next dispatch must land elsewhere.
	d2 := NewDispatcher(env)
	d2.Gate = func(b string) bool { return b != chosen }
	p := d2.Dispatch(app, nil)
	if p.Via == ViaNone {
		t.Fatal("gated dispatch failed outright")
	}
	if p.Decision.Backend == chosen {
		t.Fatalf("gated backend %q was still selected", chosen)
	}

	// Gate everything out: selection has no candidates at all.
	d3 := NewDispatcher(env)
	d3.Gate = func(string) bool { return false }
	if p := d3.Dispatch(app, nil); p.Via != ViaNone {
		t.Fatalf("fully gated dispatch placed via %v", p.Via)
	}
	if d3.Rejected != 1 {
		t.Fatalf("rejection not counted: %d", d3.Rejected)
	}
}
