package cluster

import (
	"sort"

	"repro/internal/clustertrace"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/units"
)

// BalanceSimConfig parameterizes a cluster-scale memory-balancing run: the
// executable version of Fig 19. Machines above the beta utilization
// threshold stream their excess pages over the cluster network into the
// headroom of machines below alpha, through per-machine NICs and a shared
// switch — so the rebalancing time and achievable aggregate bandwidth come
// out of the same fluid-flow model as everything else.
type BalanceSimConfig struct {
	Machines        int
	PagesPerMachine int
	Profile         clustertrace.Profile
	Alpha, Beta     float64
	Seed            int64

	// NICBandwidth is each machine's far-memory NIC (default 10 GB/s, the
	// testbed's ConnectX-5); SwitchBandwidth is the cluster switch fabric
	// (default 25 GB/s per rack of contention).
	NICBandwidth    units.BytesPerSec
	SwitchBandwidth units.BytesPerSec

	// Dead lists machine indices that are unreachable (crashed or
	// partitioned): they are excluded from balancing on both sides —
	// an unhealthy machine can neither donate headroom nor stream its
	// excess (its tasks are re-dispatched instead, see Dispatcher).
	Dead []int
}

// BalanceSimResult reports the outcome.
type BalanceSimResult struct {
	Before, After  []float64
	MBEBefore      float64
	MBEAfter       float64
	Improvement    float64
	PagesMoved     uint64
	RebalanceTime  sim.Duration
	AggregateGBps  float64
	DonorMachines  int
	SourceMachines int
	// DeadExcluded counts machines dropped from balancing for being
	// unreachable; their utilization still counts toward MBE (the load
	// exists, the balancer just cannot touch it).
	DeadExcluded int
}

// RunBalanceSim executes the balancing: greedy matching of the hottest
// machines to the emptiest donors, with every transfer contending on source
// NIC, switch, and donor NIC.
func RunBalanceSim(cfg BalanceSimConfig) BalanceSimResult {
	if cfg.NICBandwidth == 0 {
		cfg.NICBandwidth = units.GBps(10)
	}
	if cfg.SwitchBandwidth == 0 {
		cfg.SwitchBandwidth = units.GBps(25)
	}
	if cfg.Alpha > cfg.Beta {
		cfg.Alpha, cfg.Beta = cfg.Beta, cfg.Alpha
	}

	utils := clustertrace.Snapshot(cfg.Profile, cfg.Machines, cfg.Seed)
	res := BalanceSimResult{
		Before:    append([]float64(nil), utils...),
		MBEBefore: MBE(utils, cfg.Alpha, cfg.Beta),
	}

	eng := sim.NewEngine()
	fabric := pcie.NewFabric(eng)
	swl := fabric.NewLink("switch", cfg.SwitchBandwidth)
	nics := make([]*pcie.Link, cfg.Machines)
	for i := range nics {
		nics[i] = fabric.NewLink("nic", cfg.NICBandwidth)
	}

	// Greedy matching: hottest sources drain into emptiest donors.
	type ref struct {
		idx   int
		pages int64
	}
	var sources, donors []ref
	perPage := float64(cfg.PagesPerMachine)
	dead := make(map[int]bool, len(cfg.Dead))
	for _, i := range cfg.Dead {
		if i >= 0 && i < cfg.Machines && !dead[i] {
			dead[i] = true
			res.DeadExcluded++
		}
	}
	for i, u := range utils {
		if dead[i] {
			continue
		}
		if u > cfg.Beta {
			sources = append(sources, ref{i, int64((u - cfg.Beta) * perPage)})
		} else if u < cfg.Alpha {
			donors = append(donors, ref{i, int64((cfg.Alpha - u) * perPage)})
		}
	}
	sort.Slice(sources, func(a, b int) bool { return sources[a].pages > sources[b].pages })
	sort.Slice(donors, func(a, b int) bool { return donors[a].pages > donors[b].pages })
	res.SourceMachines, res.DonorMachines = len(sources), len(donors)

	after := append([]float64(nil), utils...)
	si, di := 0, 0
	for si < len(sources) && di < len(donors) {
		s, d := &sources[si], &donors[di]
		move := s.pages
		if d.pages < move {
			move = d.pages
		}
		if move > 0 {
			bytes := move * units.PageSize
			fabric.Transfer(bytes, []*pcie.Link{nics[s.idx], swl, nics[d.idx]}, nil)
			res.PagesMoved += uint64(move)
			after[s.idx] -= float64(move) / perPage
			after[d.idx] += float64(move) / perPage
			s.pages -= move
			d.pages -= move
		}
		if s.pages == 0 {
			si++
		}
		if d.pages == 0 {
			di++
		}
	}
	eng.Run()

	res.After = after
	res.MBEAfter = MBE(after, cfg.Alpha, cfg.Beta)
	res.Improvement = res.MBEBefore - res.MBEAfter
	res.RebalanceTime = sim.Duration(eng.Now())
	if secs := res.RebalanceTime.Seconds(); secs > 0 {
		res.AggregateGBps = float64(res.PagesMoved) * float64(units.PageSize) / secs / 1e9
	}
	return res
}
