package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/clustertrace"
	"repro/internal/device"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/swap"
	"repro/internal/vm"
	"repro/internal/workload"
)

func clusterEnv(eng *sim.Engine) baseline.Env {
	// Multi-backend machine: two RDMA NICs and two SSDs, as the paper's
	// scale-out testbed.
	m := vm.NewMachine(eng, pcie.Gen4, 16, 40, 1<<22)
	m.AttachDevice(device.SpecTestbedSSD("ssd0"))
	m.AttachDevice(device.SpecTestbedSSD("ssd1"))
	m.AttachDevice(device.SpecConnectX5("rdma0"))
	m.AttachDevice(device.SpecConnectX5("rdma1"))
	m.AttachDevice(device.SpecRemoteDRAM("dram0"))
	m.AttachDevice(device.SpecRemoteDRAM("dram1"))
	return baseline.Env{Machine: m, FileBackend: "ssd0"}
}

func friendlySpec() workload.Spec {
	// Swap-friendly: hot-concentrated accesses plus compute between them,
	// so the console can offload most of the footprint within the SLO.
	return workload.Spec{
		Name: "friendly", Class: workload.AI, MaxMemGiB: 2,
		FootprintPages: 2048, AnonFraction: 1.0, Coverage: 1.0,
		SegmentLen: 1024, SeqShare: 0.1, RunLen: 16,
		HotShare: 0.1, HotProb: 0.9, WriteFraction: 0.2,
		ComputePerAccess: 500 * sim.Nanosecond, MainAccesses: 8192, SwapFeature: 'F',
	}
}

func sensitiveSpec() workload.Spec {
	s := friendlySpec()
	s.Name = "sensitive"
	s.SeqShare = 0.15
	s.RunLen = 4
	s.SegmentLen = 32
	s.HotShare = 0.6
	s.HotProb = 0.3
	return s
}

func TestMBEKnownValues(t *testing.T) {
	// Two servers at 0.9, two at 0.1, alpha=beta=0.5:
	// C%=0.5, c̄=0.9 → 0.5*(0.9-0.5)=0.2; A%=0.5, ā=0.1 → -0.5*(0.1-0.5)=0.2.
	utils := []float64{0.9, 0.9, 0.1, 0.1}
	got := MBE(utils, 0.5, 0.5)
	if math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("MBE=%v, want 0.4", got)
	}
}

func TestMBEEmptyAndUniform(t *testing.T) {
	if MBE(nil, 0.3, 0.7) != 0 {
		t.Fatal("empty cluster MBE not 0")
	}
	// All servers in the middle band: nothing to balance.
	if MBE([]float64{0.5, 0.5, 0.5}, 0.3, 0.7) != 0 {
		t.Fatal("middle-band MBE not 0")
	}
}

func TestMBESwapsInvertedThresholds(t *testing.T) {
	utils := []float64{0.9, 0.1}
	if MBE(utils, 0.7, 0.3) != MBE(utils, 0.3, 0.7) {
		t.Fatal("inverted thresholds not normalized")
	}
}

func TestBalanceMovesPressure(t *testing.T) {
	utils := []float64{0.95, 0.05}
	balanced, moved := Balance(utils, 0.5, 0.5)
	if moved <= 0 {
		t.Fatal("no pressure moved")
	}
	if balanced[0] >= utils[0] || balanced[1] <= utils[1] {
		t.Fatalf("balance went the wrong way: %v", balanced)
	}
	// Conservation: total utilization unchanged.
	if math.Abs((balanced[0]+balanced[1])-(utils[0]+utils[1])) > 1e-12 {
		t.Fatal("balance did not conserve memory")
	}
}

func TestBalanceNoExtremes(t *testing.T) {
	balanced, moved := Balance([]float64{0.5, 0.6}, 0.3, 0.7)
	if moved != 0 {
		t.Fatal("nothing should move in the middle band")
	}
	if balanced[0] != 0.5 || balanced[1] != 0.6 {
		t.Fatal("values changed without pressure")
	}
}

// Property: balancing conserves total utilization and never overfills a
// cold server past alpha or leaves a hot server below beta.
func TestBalanceConservationProperty(t *testing.T) {
	f := func(seeds []uint8, aSeed, bSeed uint8) bool {
		if len(seeds) == 0 {
			return true
		}
		utils := make([]float64, len(seeds))
		total := 0.0
		for i, s := range seeds {
			utils[i] = float64(s) / 255
			total += utils[i]
		}
		alpha := float64(aSeed) / 255
		beta := float64(bSeed) / 255
		balanced, _ := Balance(utils, alpha, beta)
		if alpha > beta {
			alpha, beta = beta, alpha
		}
		sum := 0.0
		for i, b := range balanced {
			sum += b
			if utils[i] < alpha && b > alpha+1e-9 {
				return false
			}
			if utils[i] > beta && b < beta-1e-9 {
				return false
			}
		}
		return math.Abs(sum-total) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(81))}); err != nil {
		t.Fatal(err)
	}
}

func TestMBEImprovementMatchesPaperPoints(t *testing.T) {
	// Fig 19's quoted values: up to 13.8% at α=β=31% on the low-pressure
	// 2017 trace, and up to 19.7% at α=β=80% on the high-pressure 2018
	// trace; effectiveness is better on the high-pressure cluster at its
	// operating threshold.
	lo := clustertrace.Snapshot(clustertrace.Alibaba2017(), 4000, 1)
	hi := clustertrace.Snapshot(clustertrace.Alibaba2018(), 4000, 1)
	lo31 := MBEImprovement(lo, 0.31, 0.31)
	hi80 := MBEImprovement(hi, 0.80, 0.80)
	if lo31 < 0.08 || lo31 > 0.20 {
		t.Fatalf("2017 improvement at 0.31 = %.3f, paper ~0.138", lo31)
	}
	if hi80 < 0.13 || hi80 > 0.28 {
		t.Fatalf("2018 improvement at 0.80 = %.3f, paper ~0.197", hi80)
	}
	if hi80 <= lo31 {
		t.Fatalf("high-pressure improvement %.3f not above low-pressure %.3f", hi80, lo31)
	}
	// Each trace beats the other at its own operating threshold.
	if MBEImprovement(hi, 0.80, 0.80) <= MBEImprovement(lo, 0.80, 0.80) {
		t.Fatal("2018 should dominate at the 0.80 threshold")
	}
	if MBEImprovement(lo, 0.31, 0.31) <= MBEImprovement(hi, 0.31, 0.31) {
		t.Fatal("2017 should dominate at the 0.31 threshold")
	}
}

func TestDispatcherWarmStartPreference(t *testing.T) {
	eng := sim.NewEngine()
	env := clusterEnv(eng)
	// Pre-boot one VM per backend so a warm match always exists.
	for _, name := range env.Machine.BackendNames() {
		env.Machine.CreateVM("vm-"+name, 4, 4096, []string{name}, nil)
	}
	eng.Run()

	d := NewDispatcher(env)
	app := App{Spec: friendlySpec(), SLO: 1.4, Seed: 1, Cores: 1}
	var got Placement
	p := d.Dispatch(app, func(pl Placement) { got = pl })
	eng.Run()
	if p.Via != ViaFreeVM {
		t.Fatalf("placement via %v, want free-vm (warm start)", p.Via)
	}
	if got.VM == nil || got.VM.ActiveBackend() != p.Decision.Backend {
		t.Fatalf("ready callback inconsistent: %+v", got)
	}
	if p.VM.State() != vm.Online {
		t.Fatalf("VM state %v after dispatch", p.VM.State())
	}
	d.Release(p)
	if p.VM.State() != vm.Free {
		t.Fatal("release did not idle the VM")
	}
}

func TestDispatcherSwitchesWhenNoMatchingVM(t *testing.T) {
	eng := sim.NewEngine()
	env := clusterEnv(eng)
	env.Machine.CreateVM("vm1", 4, 4096, []string{"ssd0"}, nil)
	eng.Run()
	d := NewDispatcher(env)
	// friendlySpec is anon-heavy sequential: console picks rdma0, but only
	// an ssd0 VM exists → switch.
	p := d.Dispatch(App{Spec: friendlySpec(), SLO: 1.4, Seed: 1, Cores: 1}, nil)
	if p.Decision.Backend != "rdma0" {
		t.Skipf("console picked %s; switch branch untestable", p.Decision.Backend)
	}
	if p.Via != ViaSwitch {
		t.Fatalf("placement via %v, want switched-vm", p.Via)
	}
	eng.Run()
	if p.VM.ActiveBackend() != "rdma0" {
		t.Fatal("switch did not complete")
	}
}

func TestDispatcherCreatesVMWhenFleetBusy(t *testing.T) {
	eng := sim.NewEngine()
	env := clusterEnv(eng)
	d := NewDispatcher(env)
	p := d.Dispatch(App{Spec: friendlySpec(), SLO: 1.4, Seed: 1, Cores: 1}, nil)
	if p.Via != ViaCreate {
		t.Fatalf("empty fleet placement via %v, want created-vm", p.Via)
	}
	eng.Run()
	if len(env.Machine.VMs()) != 1 {
		t.Fatal("no VM created")
	}
}

func TestDispatcherRejectsWhenHostFull(t *testing.T) {
	eng := sim.NewEngine()
	m := vm.NewMachine(eng, pcie.Gen4, 16, 1, 64) // tiny host
	m.AttachDevice(device.SpecTestbedSSD("ssd0"))
	env := baseline.Env{Machine: m, FileBackend: "ssd0"}
	d := NewDispatcher(env)
	p := d.Dispatch(App{Spec: friendlySpec(), SLO: 1.4, Seed: 1, Cores: 4}, nil)
	if p.Via != ViaNone || d.Rejected != 1 {
		t.Fatalf("overcommitted dispatch: via=%v rejected=%d", p.Via, d.Rejected)
	}
}

func TestRunThroughputFarMemoryBeatsFullMemory(t *testing.T) {
	// The Fig 16 mechanism: with far memory + SLO slack, more jobs fit in
	// local memory simultaneously → higher task throughput.
	mkJobs := func() []App {
		jobs := make([]App, 8)
		for i := range jobs {
			jobs[i] = App{Spec: friendlySpec(), SLO: 1.8, Seed: int64(i), Cores: 1}
		}
		return jobs
	}
	const serverPages = 4096 // fits 2 full footprints, or ~6 offloaded
	run := func(policy AdmissionPolicy) ThroughputResult {
		eng := sim.NewEngine()
		env := clusterEnv(eng)
		return RunThroughput(env, mkJobs(), policy, serverPages, 16)
	}
	full, far := run(FullMemory), run(FarMemorySLO)
	if full.Completed != 8 || far.Completed != 8 {
		t.Fatalf("jobs lost: full=%d far=%d", full.Completed, far.Completed)
	}
	if far.PeakParallel <= full.PeakParallel {
		t.Fatalf("far memory parallelism %d not above full-memory %d",
			far.PeakParallel, full.PeakParallel)
	}
	if far.Throughput <= full.Throughput {
		t.Fatalf("far-memory throughput %.1f/h not above baseline %.1f/h",
			far.Throughput, full.Throughput)
	}
	if far.MeanLocalRatio >= 1.0 {
		t.Fatal("far-memory policy did not offload")
	}
}

func TestPlacementKindStrings(t *testing.T) {
	kinds := map[PlacementKind]string{ViaOnlineVM: "online-vm", ViaFreeVM: "free-vm",
		ViaSwitch: "switched-vm", ViaCreate: "created-vm", ViaNone: "unplaced"}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("kind %d = %q, want %q", k, k.String(), want)
		}
	}
}

func TestClusterTraceProfiles(t *testing.T) {
	lo := clustertrace.Snapshot(clustertrace.Alibaba2017(), 5000, 7)
	hi := clustertrace.Snapshot(clustertrace.Alibaba2018(), 5000, 7)
	if m := clustertrace.Mean(lo); math.Abs(m-0.4895) > 0.02 {
		t.Fatalf("2017 mean %.4f, want ~0.4895", m)
	}
	if m := clustertrace.Mean(hi); math.Abs(m-0.8705) > 0.02 {
		t.Fatalf("2018 mean %.4f, want ~0.8705", m)
	}
	for _, u := range append(lo, hi...) {
		if u < 0.02 || u > 0.995 {
			t.Fatalf("utilization %v out of range", u)
		}
	}
	// Determinism.
	lo2 := clustertrace.Snapshot(clustertrace.Alibaba2017(), 5000, 7)
	for i := range lo {
		if lo[i] != lo2[i] {
			t.Fatal("snapshot not deterministic")
		}
	}
	s := clustertrace.Series(clustertrace.Alibaba2017(), 100, 3)
	if len(s) != 100 {
		t.Fatal("series length wrong")
	}
}

// Algorithm 1's system_pressure input: a saturated device must be excluded
// from backend selection, diverting placement to the next-best option.
func TestDispatcherAvoidsSaturatedBackend(t *testing.T) {
	eng := sim.NewEngine()
	env := clusterEnv(eng)
	for _, name := range env.Machine.BackendNames() {
		env.Machine.CreateVM("vm-"+name, 4, 4096, []string{name}, nil)
	}
	eng.Run()

	d := NewDispatcher(env)
	app := App{Spec: friendlySpec(), SLO: 1.6, Seed: 1, Cores: 1}
	first := d.Dispatch(app, nil)
	if first.Via == ViaNone {
		t.Fatal("baseline dispatch failed")
	}
	preferred := first.Decision.Backend
	d.Release(first)

	// Saturate the preferred device: flood its queue far beyond 4x width.
	dev := env.Machine.Device(preferred)
	be := env.Machine.Backend(preferred)
	for i := 0; i < 8*dev.Channels()+64; i++ {
		be.Submit(swap.Extent{Pages: 64, Sequential: true}, nil)
	}
	// Let the submissions land in the device queues.
	eng.RunUntil(eng.Now().Add(50 * sim.Microsecond))
	if dev.QueueDepth() <= 4*dev.Channels() {
		t.Skipf("could not saturate %s (queue %d)", preferred, dev.QueueDepth())
	}

	second := d.Dispatch(app, nil)
	if second.Via == ViaNone {
		t.Fatal("dispatch under pressure failed entirely")
	}
	if second.Decision.Backend == preferred {
		t.Fatalf("dispatcher placed on the saturated backend %s", preferred)
	}
	for _, name := range second.Decision.Priority {
		if name == preferred {
			t.Fatalf("saturated backend %s still in priority list %v", preferred, second.Decision.Priority)
		}
	}
}
