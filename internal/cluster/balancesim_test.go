package cluster

import (
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/clustertrace"
	"repro/internal/sim"
)

func balanceCfg(p clustertrace.Profile, a, b float64) BalanceSimConfig {
	return BalanceSimConfig{
		Machines: 200, PagesPerMachine: 16384,
		Profile: p, Alpha: a, Beta: b, Seed: 5,
	}
}

func TestBalanceSimConservation(t *testing.T) {
	res := RunBalanceSim(balanceCfg(clustertrace.Alibaba2018(), 0.5, 0.8))
	var before, after float64
	for i := range res.Before {
		before += res.Before[i]
		after += res.After[i]
	}
	if math.Abs(before-after) > 1e-6 {
		t.Fatalf("memory not conserved: %v vs %v", before, after)
	}
	for i := range res.After {
		// No donor filled beyond alpha; no source drained below beta
		// (within one page of rounding).
		eps := 1.0/16384 + 1e-9
		if res.Before[i] < 0.5 && res.After[i] > 0.5+eps {
			t.Fatalf("donor %d overfilled: %v -> %v", i, res.Before[i], res.After[i])
		}
		if res.Before[i] > 0.8 && res.After[i] < 0.8-eps {
			t.Fatalf("source %d over-drained: %v -> %v", i, res.Before[i], res.After[i])
		}
	}
}

func TestBalanceSimImprovesMBE(t *testing.T) {
	res := RunBalanceSim(balanceCfg(clustertrace.Alibaba2018(), 0.8, 0.8))
	if res.PagesMoved == 0 {
		t.Fatal("no pages moved on a high-pressure trace")
	}
	if res.Improvement <= 0 {
		t.Fatalf("balancing did not improve MBE: %v -> %v", res.MBEBefore, res.MBEAfter)
	}
	if res.RebalanceTime <= 0 {
		t.Fatal("no time elapsed")
	}
	if res.AggregateGBps <= 0 {
		t.Fatal("no aggregate bandwidth")
	}
	if res.SourceMachines == 0 || res.DonorMachines == 0 {
		t.Fatal("no participants identified")
	}
}

func TestBalanceSimMatchesAnalyticMBE(t *testing.T) {
	// The simulated rebalancing must land near the closed-form Balance().
	cfg := balanceCfg(clustertrace.Alibaba2017(), 0.31, 0.31)
	res := RunBalanceSim(cfg)
	utils := clustertrace.Snapshot(cfg.Profile, cfg.Machines, cfg.Seed)
	analytic := MBEImprovement(utils, 0.31, 0.31)
	if math.Abs(res.Improvement-analytic) > 0.02 {
		t.Fatalf("simulated improvement %.4f vs analytic %.4f", res.Improvement, analytic)
	}
}

func TestBalanceSimSwitchBound(t *testing.T) {
	// With a tiny switch, aggregate bandwidth is pinned at the switch rate.
	cfg := balanceCfg(clustertrace.Alibaba2018(), 0.5, 0.8)
	cfg.SwitchBandwidth = 1e9 // 1 GB/s
	res := RunBalanceSim(cfg)
	if res.AggregateGBps > 1.05 {
		t.Fatalf("aggregate %.2f GB/s exceeds the 1 GB/s switch", res.AggregateGBps)
	}
	if res.AggregateGBps < 0.9 {
		t.Fatalf("switch badly underutilized: %.2f GB/s", res.AggregateGBps)
	}
}

func TestBalanceSimInvertedThresholds(t *testing.T) {
	a := RunBalanceSim(balanceCfg(clustertrace.Alibaba2018(), 0.8, 0.5))
	b := RunBalanceSim(balanceCfg(clustertrace.Alibaba2018(), 0.5, 0.8))
	if a.PagesMoved != b.PagesMoved {
		t.Fatal("threshold order should be normalized")
	}
}

func TestBalanceSimNothingToDo(t *testing.T) {
	// Thresholds outside the distribution: no movement, zero time.
	res := RunBalanceSim(balanceCfg(clustertrace.Alibaba2017(), 0.001, 0.999))
	if res.PagesMoved != 0 {
		t.Fatalf("moved %d pages with nothing to balance", res.PagesMoved)
	}
	if res.Improvement != 0 {
		t.Fatal("improvement without movement")
	}
}

func arrivalEnv(t *testing.T) (baseline.Env, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	return clusterEnv(eng), eng
}

func TestArrivalSimCompletesEverything(t *testing.T) {
	env, _ := arrivalEnv(t)
	WarmFleet(env, 4, 4096)
	res := RunArrivalSim(env, ArrivalSimConfig{
		Templates:        []App{{Spec: friendlySpec(), SLO: 1.6, Cores: 1}},
		Arrivals:         12,
		MeanInterarrival: 10 * sim.Millisecond,
		Seed:             3,
	})
	if res.Completed+res.Rejected != 12 {
		t.Fatalf("completed %d + rejected %d != 12", res.Completed, res.Rejected)
	}
	if res.Completed < 10 {
		t.Fatalf("only %d completed", res.Completed)
	}
	if res.Makespan <= 0 {
		t.Fatal("no time elapsed")
	}
	total := res.Rejected
	for _, n := range res.Placed {
		total += n
	}
	if total != 12 {
		t.Fatalf("placement accounting: %v + %d != 12", res.Placed, res.Rejected)
	}
}

func TestArrivalSimWarmPoolBeatsCold(t *testing.T) {
	run := func(warm bool) ArrivalSimResult {
		env, _ := arrivalEnv(t)
		if warm {
			WarmFleet(env, 4, 4096)
		}
		return RunArrivalSim(env, ArrivalSimConfig{
			Templates:        []App{{Spec: friendlySpec(), SLO: 1.6, Cores: 1}},
			Arrivals:         8,
			MeanInterarrival: 5 * sim.Millisecond,
			Seed:             4,
		})
	}
	w, c := run(true), run(false)
	if w.MeanPlacementDelay >= c.MeanPlacementDelay {
		t.Fatalf("warm placement delay %v not below cold %v",
			w.MeanPlacementDelay, c.MeanPlacementDelay)
	}
	if w.Placed[ViaCreate] >= c.Placed[ViaCreate] {
		t.Fatalf("warm pool should create fewer VMs: %v vs %v", w.Placed, c.Placed)
	}
}

func TestArrivalSimDeterministic(t *testing.T) {
	run := func() ArrivalSimResult {
		env, _ := arrivalEnv(t)
		WarmFleet(env, 4, 4096)
		return RunArrivalSim(env, ArrivalSimConfig{
			Templates:        []App{{Spec: friendlySpec(), SLO: 1.6, Cores: 1}, {Spec: sensitiveSpec(), SLO: 1.4, Cores: 1}},
			Arrivals:         10,
			MeanInterarrival: 2 * sim.Millisecond,
			Seed:             5,
		})
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.Makespan != b.Makespan || a.MeanPlacementDelay != b.MeanPlacementDelay {
		t.Fatalf("arrival sim nondeterministic:\n%+v\n%+v", a, b)
	}
}

func TestThroughputQoSCompliance(t *testing.T) {
	eng := sim.NewEngine()
	env := clusterEnv(eng)
	jobs := make([]App, 8)
	for i := range jobs {
		jobs[i] = App{Spec: friendlySpec(), SLO: 1.8, Seed: int64(i), Cores: 1}
	}
	res := RunThroughput(env, jobs, FarMemorySLO, 4096, 16)
	if res.SLOCompliance < 0 || res.SLOCompliance > 1 {
		t.Fatalf("compliance %v out of range", res.SLOCompliance)
	}
	// The console's safety margin should keep the vast majority of jobs
	// within their SLO even under co-location.
	if res.SLOCompliance < 0.7 {
		t.Fatalf("SLO compliance %.2f too low", res.SLOCompliance)
	}
	// Full-memory runs have no far-memory jobs: compliance is trivially 1.
	eng2 := sim.NewEngine()
	env2 := clusterEnv(eng2)
	full := RunThroughput(env2, jobs, FullMemory, 4096, 16)
	if full.SLOCompliance != 1 {
		t.Fatalf("full-memory compliance %v, want 1", full.SLOCompliance)
	}
}
