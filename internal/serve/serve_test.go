package serve

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/device"
	"repro/internal/invariant"
	"repro/internal/obs"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workload"
)

// servingEnv builds a fresh machine with the named backends attached.
// Backend names choose their device model by prefix (ssd/rdma/dram).
func servingEnv(backends ...string) baseline.Env {
	eng := sim.NewEngine()
	m := vm.NewMachine(eng, pcie.Gen4, 40, 16, 1<<20)
	for _, name := range backends {
		switch {
		case strings.HasPrefix(name, "rdma"):
			m.AttachDevice(device.SpecConnectX5(name))
		case strings.HasPrefix(name, "dram"):
			m.AttachDevice(device.SpecRemoteDRAM(name))
		default:
			m.AttachDevice(device.SpecTestbedSSD(name))
		}
	}
	return baseline.Env{Machine: m, FileBackend: backends[0]}
}

func warmedEnv(backends ...string) baseline.Env {
	env := servingEnv(backends...)
	PrewarmFleet(env, 4, 2, 4096)
	return env
}

// withInvariants enables the checking layer around fn, failing the test on
// any violation.
func withInvariants(t *testing.T, fn func()) {
	t.Helper()
	var violations []invariant.Violation
	restore := invariant.SetHandler(func(v invariant.Violation) {
		violations = append(violations, v)
	})
	defer restore()
	invariant.Reset()
	invariant.Enable()
	defer invariant.Disable()
	fn()
	for _, v := range violations {
		t.Errorf("invariant violated: %v", v)
	}
}

func TestServeUnderloadedAllInSLO(t *testing.T) {
	env := warmedEnv("ssd0", "rdma0")
	res := Run(env, Config{
		Templates: RequestTemplates(),
		Arrivals:  workload.Poisson{RPS: 50},
		Duration:  4 * sim.Second,
		Drain:     sim.Second,
		SLO:       100 * sim.Millisecond,
		Shedding:  true,
		Breakers:  true,
		Seed:      1,
	})
	if res.Offered == 0 || res.Admitted != res.Offered {
		t.Fatalf("underloaded run refused traffic: %+v", res)
	}
	if res.Completed != res.Admitted || res.InFlight != 0 {
		t.Fatalf("underloaded run did not drain: %+v", res)
	}
	if res.SLOViolationFrac != 0 {
		t.Fatalf("underloaded run violated SLO: %+v", res)
	}
	if res.GoodputRPS <= 0 {
		t.Fatalf("no goodput: %+v", res)
	}
}

// TestServeConservation checks the conservation law under the nastiest mix
// available: a flash crowd driving the server deep into overload while one
// backend fails and recovers mid-run.
func TestServeConservation(t *testing.T) {
	withInvariants(t, func() {
		env := warmedEnv("ssd0", "rdma0")
		arr, err := workload.ParseArrival("flash:100:8:1:2", 7)
		if err != nil {
			t.Fatal(err)
		}
		// Fault window: rdma0 dies during the crowd, comes back after.
		dev := env.Machine.Device("rdma0")
		eng := env.Machine.Eng
		base := eng.Now()
		eng.At(base.Add(1500*sim.Millisecond), dev.Fail)
		eng.At(base.Add(3*sim.Second), dev.Recover)

		res := Run(env, Config{
			Templates: RequestTemplates(),
			Arrivals:  arr,
			Duration:  5 * sim.Second,
			Drain:     sim.Second,
			SLO:       100 * sim.Millisecond,
			Shedding:  true,
			Breakers:  true,
			Retier:    true,
			Seed:      3,
		})

		// The law also holds on the final numbers, independently of the
		// invariant layer.
		refused := res.RefusedQueueFull + res.RefusedDeadline + res.RefusedThrottle
		if res.Offered != refused+res.Admitted {
			t.Fatalf("offered %d != refused %d + admitted %d", res.Offered, refused, res.Admitted)
		}
		if res.Admitted != res.Completed+res.Shed+res.InFlight {
			t.Fatalf("admitted %d != completed %d + shed %d + in-flight %d",
				res.Admitted, res.Completed, res.Shed, res.InFlight)
		}
		if res.Completed == 0 {
			t.Fatal("nothing completed")
		}
	})
	if ckConservation.Hits() == 0 {
		t.Fatal("serve.conservation was never evaluated")
	}
}

// TestServeDeterministic pins byte-identical results for identical seeds,
// and different results for different seeds (the seed is actually used).
func TestServeDeterministic(t *testing.T) {
	run := func(seed int64) Result {
		env := warmedEnv("ssd0", "rdma0")
		return Run(env, Config{
			Templates: RequestTemplates(),
			Arrivals:  workload.Diurnal{BaseRPS: 150, Amplitude: 0.8, Period: 2 * sim.Second},
			Duration:  4 * sim.Second,
			Drain:     sim.Second,
			SLO:       100 * sim.Millisecond,
			Shedding:  true,
			Breakers:  true,
			Retier:    true,
			Seed:      seed,
		})
	}
	a, b := run(11), run(11)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical runs diverged:\n%+v\n%+v", a, b)
	}
	if c := run(12); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical results")
	}
}

// TestFlashCrowdSheddingDefendsSLO is the headline overload test: under an
// 8x flash crowd, the shedder keeps the admitted traffic's placement p99
// within the SLO while a no-shedding baseline blows through it — at a
// goodput no worse than 10% below the baseline's.
func TestFlashCrowdSheddingDefendsSLO(t *testing.T) {
	slo := 100 * sim.Millisecond
	run := func(shed bool) Result {
		env := warmedEnv("ssd0", "rdma0")
		arr, err := workload.ParseArrival("flash:100:8:1:2", 7)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Templates: RequestTemplates(),
			Arrivals:  arr,
			Duration:  5 * sim.Second,
			Drain:     2 * sim.Second,
			SLO:       slo,
			Shedding:  shed,
			Seed:      7,
		}
		if !shed {
			// The baseline has no overload protection at all: deadline
			// enforcement off, so the queue soaks the crowd and delay
			// explodes.
			cfg.AdmitDeadline = sim.Hour
		}
		return Run(env, cfg)
	}
	shed, base := run(true), run(false)

	if base.DelayP99 <= slo {
		t.Fatalf("baseline p99 %v did not violate the %v SLO; crowd too small", base.DelayP99, slo)
	}
	if shed.DelayP99 > slo {
		t.Fatalf("shedder let admitted p99 reach %v, over the %v SLO", shed.DelayP99, slo)
	}
	if shed.Shed+shed.RefusedDeadline+shed.RefusedThrottle == 0 {
		t.Fatal("shedder shed nothing under an 8x flash crowd")
	}
	if shed.GoodputRPS < 0.9*base.GoodputRPS {
		t.Fatalf("shedding cost too much goodput: %.1f vs baseline %.1f",
			shed.GoodputRPS, base.GoodputRPS)
	}
}

// TestServeBreakerCutsFailedBackend injects a backend brown-out mid-run
// and checks the circuit opens, the run survives, and the circuit closes
// again after recovery probing. The fault is a degradation, not a hard
// Fail: a dead device is already excluded by the dispatcher's own health
// check, so the breaker's value is exactly the gray failure the device
// layer does not flag — ops that still complete, but past their timeout.
func TestServeBreakerCutsFailedBackend(t *testing.T) {
	env := warmedEnv("ssd0", "rdma0")
	dev := env.Machine.Device("rdma0")
	eng := env.Machine.Eng
	base := eng.Now()
	eng.At(base.Add(sim.Second), func() { dev.Degrade(5000, 0.01) })
	eng.At(base.Add(2500*sim.Millisecond), dev.Recover)

	res := Run(env, Config{
		Templates: RequestTemplates(),
		Arrivals:  workload.Poisson{RPS: 150},
		Duration:  5 * sim.Second,
		Drain:     2 * sim.Second,
		SLO:       200 * sim.Millisecond,
		Shedding:  true,
		Breakers:  true,
		Retier:    true,
		Seed:      5,
	})
	if res.BreakerOpens == 0 {
		t.Fatalf("backend outage did not open a breaker: %+v", res)
	}
	if res.BreakerCloses == 0 {
		t.Fatalf("breaker never closed after recovery: %+v", res)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed through the outage")
	}
}

// TestCapacitySweepXDMBeatsStatic is the acceptance bar for capacity
// discovery: the sweep finds a finite knee for both a static single-backend
// fleet and an xdm multi-backend fleet, and the multi-backend capacity is
// strictly higher.
func TestCapacitySweepXDMBeatsStatic(t *testing.T) {
	base := Config{
		Templates: RequestTemplates(),
		SLO:       100 * sim.Millisecond,
		Seed:      1,
	}
	// The serving fleet is memory-overcommitted: VM DRAM holds half of a
	// request's footprint, so the other half must live on a backend and
	// backend speed sets the service time. That is where multi-backend
	// capacity comes from; with enough DRAM per VM both configurations
	// serve from local memory and tie.
	warm := func(backends ...string) func() baseline.Env {
		return func() baseline.Env {
			env := servingEnv(backends...)
			PrewarmFleet(env, 4, 2, 1024)
			return env
		}
	}
	sweeps := []NamedSweep{
		{Name: "static-ssd", Build: warm("ssd0"), Serve: base,
			Cap: CapacityConfig{StartRPS: 4, StepRPS: 4, MaxRPS: 48, Window: 2 * sim.Second}},
		{Name: "xdm", Build: warm("ssd0", "rdma0", "dram0"), Serve: base,
			Cap: CapacityConfig{StartRPS: 100, StepRPS: 100, MaxRPS: 1200, Window: sim.Second}},
	}
	results := SweepGrid(sweeps, 2)

	static, xdm := results[0], results[1]
	if !static.Tripped {
		t.Fatalf("static sweep never tripped: %+v", static)
	}
	if !xdm.Tripped {
		t.Fatalf("xdm sweep never tripped: %+v", xdm)
	}
	if static.MaxSustainableRPS <= 0 || xdm.MaxSustainableRPS <= 0 {
		t.Fatalf("degenerate knees: static %.0f, xdm %.0f", static.MaxSustainableRPS, xdm.MaxSustainableRPS)
	}
	if xdm.MaxSustainableRPS <= static.MaxSustainableRPS {
		t.Fatalf("xdm capacity %.0f not above static %.0f",
			xdm.MaxSustainableRPS, static.MaxSustainableRPS)
	}

	// Render sanity: every configuration section present, knee reported.
	text := RenderCapacity(results)
	for _, want := range []string{"static-ssd", "xdm", "max sustainable", "OVERLOAD"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
}

// TestSweepGridWorkerCountInvariant pins the determinism contract: the
// same sweeps produce deeply equal results at any worker count.
func TestSweepGridWorkerCountInvariant(t *testing.T) {
	mk := func() []NamedSweep {
		base := Config{Templates: RequestTemplates(), SLO: 100 * sim.Millisecond, Seed: 2}
		cc := CapacityConfig{StartRPS: 50, StepRPS: 50, MaxRPS: 150, Window: 500 * sim.Millisecond}
		return []NamedSweep{
			{Name: "a", Build: func() baseline.Env { return warmedEnv("ssd0") }, Serve: base, Cap: cc},
			{Name: "b", Build: func() baseline.Env { return warmedEnv("ssd0", "rdma0") }, Serve: base, Cap: cc},
			{Name: "c", Build: func() baseline.Env { return warmedEnv("ssd0", "dram0") }, Serve: base, Cap: cc},
		}
	}
	one := SweepGrid(mk(), 1)
	many := SweepGrid(mk(), 4)
	if !reflect.DeepEqual(one, many) {
		t.Fatalf("worker count changed sweep results:\n%+v\n%+v", one, many)
	}
}

// TestServeObservability pins the exported counters against the run's
// result, and exercises the breaker-transition instants.
func TestServeObservability(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	env := servingEnv("ssd0", "rdma0")
	rec := obs.Attach(env.Machine.Eng)
	PrewarmFleet(env, 4, 2, 4096)
	dev := env.Machine.Device("rdma0")
	eng := env.Machine.Eng
	eng.At(eng.Now().Add(sim.Second), func() { dev.Degrade(5000, 0.01) })

	arr, err := workload.ParseArrival("flash:100:6:1:2", 9)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(env, Config{
		Templates: RequestTemplates(),
		Arrivals:  arr,
		Duration:  4 * sim.Second,
		Drain:     sim.Second,
		SLO:       100 * sim.Millisecond,
		Shedding:  true,
		Breakers:  true,
		Retier:    true,
		Seed:      9,
	})
	rec.Seal()
	if res.BreakerOpens == 0 {
		t.Fatal("degraded backend did not open a breaker")
	}
	for name, want := range map[string]int{
		"serve/offered":       res.Offered,
		"serve/admitted":      res.Admitted,
		"serve/shed":          res.Shed,
		"serve/completed":     res.Completed,
		"serve/breaker-opens": res.BreakerOpens,
	} {
		if got := rec.Counter(name).Value; got != float64(want) {
			t.Errorf("counter %s = %v, want %d", name, got, want)
		}
	}
}

// TestQueueBound drives a small overcommitted fleet into deep overload
// with deadline enforcement off: the bounded queue is the only front-door
// protection left, and it must refuse at its cap rather than grow.
func TestQueueBound(t *testing.T) {
	env := servingEnv("ssd0", "dram0")
	PrewarmFleet(env, 4, 2, 1024)
	res := Run(env, Config{
		Templates:     RequestTemplates(),
		Arrivals:      workload.Poisson{RPS: 2000},
		Duration:      3 * sim.Second,
		Drain:         sim.Second,
		SLO:           100 * sim.Millisecond,
		QueueCap:      32,
		AdmitDeadline: sim.Hour,
		Seed:          13,
	})
	if res.RefusedQueueFull == 0 {
		t.Fatalf("bounded queue never refused under 2000 rps overload: %+v", res)
	}
	if res.MaxQueue > 32 {
		t.Fatalf("queue grew past its cap: %d", res.MaxQueue)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
}

// TestRetierMovesIdleVMsOffSickBackend pins the pre-positioning path: when
// a breaker condemns a backend, its idle VMs are switched to a healthy one
// ahead of demand instead of waiting for a dispatch to pay the switch.
func TestRetierMovesIdleVMsOffSickBackend(t *testing.T) {
	env := warmedEnv("ssd0", "rdma0")
	dev := env.Machine.Device("rdma0")
	eng := env.Machine.Eng
	eng.At(eng.Now().Add(sim.Second), func() { dev.Degrade(5000, 0.01) })
	// No recovery: rdma0 stays condemned for the rest of the run.

	res := Run(env, Config{
		Templates: RequestTemplates(),
		Arrivals:  workload.Poisson{RPS: 150},
		Duration:  4 * sim.Second,
		Drain:     2 * sim.Second,
		SLO:       200 * sim.Millisecond,
		Breakers:  true,
		Retier:    true,
		Seed:      5,
	})
	if res.BreakerOpens == 0 {
		t.Fatalf("degraded backend never condemned: %+v", res)
	}
	if res.Retiers == 0 {
		t.Fatalf("no idle VM was re-tiered off the condemned backend: %+v", res)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
}

func TestPrewarmFleet(t *testing.T) {
	env := servingEnv("ssd0", "rdma0")
	PrewarmFleet(env, 4, 2, 4096)
	vms := env.Machine.VMs()
	if len(vms) != 4 {
		t.Fatalf("fleet size %d, want 4", len(vms))
	}
	byBackend := map[string]int{}
	for _, v := range vms {
		if v.State() != vm.Free {
			t.Fatalf("VM %s not Free after prewarm: %v", v.Name, v.State())
		}
		byBackend[v.ActiveBackend()]++
	}
	// Round-robin: 4 VMs over 2 backends → 2 each.
	if byBackend["ssd0"] != 2 || byBackend["rdma0"] != 2 {
		t.Fatalf("fleet not spread round-robin: %v", byBackend)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{SLO: 100 * sim.Millisecond}.withDefaults()
	if c.QueueCap != 256 || c.MaxTasksPerVM != 2 || c.Tick != 50*sim.Millisecond {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if c.AdmitDeadline != c.SLO {
		t.Fatalf("admit deadline default %v, want SLO %v", c.AdmitDeadline, c.SLO)
	}
}
