package serve

import (
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/workload"
)

// RequestTemplates is the standard pool of serving request shapes: small,
// hot-concentrated requests sized so thousands fit in a serving window —
// in open-loop mode the unit of work is a request, not a batch job. Two
// shapes alternate: a cache-friendly lookup and a scatter-heavy scan, so
// the fleet sees a mix of swap-friendly and swap-sensitive traffic.
func RequestTemplates() []cluster.App {
	lookup := workload.Spec{
		Name: "req-lookup", Class: workload.AI, MaxMemGiB: 0.25,
		FootprintPages: 1024, AnonFraction: 1.0, Coverage: 1.0,
		SegmentLen: 512, SeqShare: 0.1, RunLen: 16,
		HotShare: 0.1, HotProb: 0.9, WriteFraction: 0.1,
		ComputePerAccess: 500 * sim.Nanosecond, MainAccesses: 2048,
		SwapFeature: 'F',
	}
	scan := lookup
	scan.Name = "req-scan"
	scan.SeqShare = 0.4
	scan.RunLen = 32
	scan.HotShare = 0.4
	scan.HotProb = 0.5
	scan.MainAccesses = 4096
	return []cluster.App{
		{Spec: lookup, SLO: 1.5, Cores: 1},
		{Spec: scan, SLO: 1.5, Cores: 1},
	}
}
