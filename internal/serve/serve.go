// Package serve is the open-loop serving mode: an arrival process offers
// requests at a rate the server did not choose, and the robustness
// machinery — bounded admission queue with deadline-based admission
// control, an SLO-aware adaptive load shedder, per-backend circuit
// breakers, and online backend re-tiering — decides what to accept, what
// to refuse, and where to run what was accepted.
//
// The paper's evaluation is closed-loop (fixed task grids run to
// completion); this package is the "heavy traffic from millions of users"
// half: overload is an input, and surviving it gracefully — shedding the
// excess while the admitted traffic keeps its SLO — is the measured,
// gated behavior. See DESIGN.md "Serving & overload control".
//
// Accounting model (the conservation law checked by the serve.conservation
// invariant):
//
//	offered  = refused (at the front door) + admitted
//	admitted = completed + shed (post-admission drops) + in-flight
//
// Refusals never enter the system (queue-full, predicted-deadline, and
// shedder throttling); sheds are admitted requests dropped from the queue
// when their waiting time exceeds the deadline.
package serve

import (
	"math/rand"
	"sort"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/invariant"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/place"
	"repro/internal/sim"
	"repro/internal/swap"
	"repro/internal/task"
	"repro/internal/vm"
	"repro/internal/workload"
)

// ckConservation checks offered/admitted/completed/shed/in-flight
// conservation at every control tick and at the end of the run.
var ckConservation = invariant.Register("serve.conservation")

// Config parameterizes one open-loop serving run.
type Config struct {
	// Templates is the pool of request shapes; arrivals cycle through it
	// pseudo-randomly (seeded).
	Templates []cluster.App
	// Arrivals is the open-loop arrival process.
	Arrivals workload.ArrivalProcess
	// Duration is the arrival window: requests arrive in [0, Duration).
	Duration sim.Duration
	// Drain extends the simulation past the arrival window so in-flight
	// work can finish (0: stop at Duration and report in-flight).
	Drain sim.Duration
	// SLO is the placement-delay target (submission → VM-ready) the
	// shedder defends for admitted traffic, as a p99.
	SLO sim.Duration
	// QueueCap bounds the admission queue (default 256). Arrivals finding
	// the queue full are refused.
	QueueCap int
	// AdmitDeadline refuses arrivals whose predicted queue wait exceeds
	// it, and sheds queued requests that have already waited longer —
	// work that cannot possibly meet its deadline is not worth queueing,
	// and shedding it is what keeps the *admitted* traffic's placement
	// delay bounded. Defaults to SLO; 0 with no SLO disables deadline
	// enforcement entirely.
	AdmitDeadline sim.Duration
	// MaxTasksPerVM is the dispatcher's per-VM concurrency bound
	// (default 2); see cluster.Dispatcher.MaxTasksPerVM.
	MaxTasksPerVM int
	// Shedding enables the adaptive token-bucket shedder; without it, only
	// the queue bound and the admit deadline protect the server.
	Shedding bool
	// Breakers enables per-backend circuit breakers.
	Breakers bool
	// Retier enables online backend reconfiguration under sustained
	// pressure: Free VMs parked on broken or saturated backends are
	// switched to the healthiest one.
	Retier bool
	// Tick is the control-loop cadence (default 50ms): shedder adaptation,
	// queue-deadline scanning, pressure detection, conservation checks.
	Tick sim.Duration
	// Policy overrides the dispatcher's placement policy (nil = alg1);
	// see internal/place.
	Policy *place.Policy
	// Seed feeds every stochastic component (arrival draws, template
	// choice, breaker jitter).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	if c.AdmitDeadline <= 0 {
		c.AdmitDeadline = c.SLO
	}
	if c.MaxTasksPerVM <= 0 {
		c.MaxTasksPerVM = 2
	}
	if c.Tick <= 0 {
		c.Tick = 50 * sim.Millisecond
	}
	return c
}

// Result summarizes one serving run.
type Result struct {
	// Offered is the total arrivals in the window.
	Offered int
	// Front-door refusals, by reason. Refused work never entered the
	// system.
	RefusedQueueFull int
	RefusedDeadline  int
	RefusedThrottle  int
	// Admitted = Offered - refusals.
	Admitted int
	// Degraded is the subset of Admitted served in degraded mode (cheaper
	// response) by the shedder's brown-out band.
	Degraded int
	// Shed counts admitted requests dropped from the queue after waiting
	// past the deadline.
	Shed int
	// Completed tasks, and the subset whose placement delay met the SLO.
	Completed      int
	CompletedInSLO int
	// InFlight at the end of the run: queued + dispatched-but-not-ready +
	// running.
	InFlight int

	// Placement-delay distribution over admitted work that reached
	// VM-ready (submission → VM-ready; see cluster.ArrivalSimResult).
	DelayP50, DelayP95, DelayP99 sim.Duration
	DelaySamples                 int
	// SLOViolationFrac is the share of measured placements over the SLO.
	SLOViolationFrac float64

	// GoodputRPS is useful work delivered per second of the arrival
	// window: completions whose placement delay met the SLO, with degraded
	// responses weighted by their cost share (degradeCost) so brown-out
	// cannot inflate goodput by making responses cheaper.
	GoodputRPS float64
	// ShedRate is (refusals + sheds) / offered.
	ShedRate float64

	// Control-plane activity.
	BreakerOpens  int
	BreakerCloses int
	Retiers       int
	MaxQueue      int
	// ShedderRate is the shedder's admit-rate limit at the end of the run
	// (req/s; 0 when shedding is off).
	ShedderRate float64
}

// queued is one admitted request waiting for dispatch.
type queued struct {
	app      cluster.App
	arrived  sim.Time
	degraded bool
}

// server is the run state of one serving simulation.
type server struct {
	cfg   Config
	env   baseline.Env
	eng   *sim.Engine
	d     *cluster.Dispatcher
	rng   *rand.Rand
	start sim.Time // engine time when serving began; arrival processes see elapsed time

	queue []queued
	res   Result

	// Conservation pieces, tracked independently of the queue slice so the
	// invariant is a structural check, not arithmetic identity.
	pendingReady int // dispatched, VM not ready yet
	running      int // task started, not completed
	inSLOSamples int // placement delays at or under the SLO
	goodWeight   float64

	delays metrics.Histogram
	// ring holds recent placement delays for the shedder's window p99.
	ring  [128]sim.Duration
	ringN int

	shed shedder

	breakers     map[string]*faults.Breaker
	backendOrder []string

	pressureTicks int
	lastRetier    sim.Time

	ewmaServiceNS float64

	// Observability handles, resolved once (nil when off).
	rec        *obs.Recorder
	obsQueue   *metrics.BucketTimeline
	obsRate    *metrics.BucketTimeline
	obsArrival *metrics.BucketTimeline
}

// shedder is the adaptive admission throttle: a token bucket whose refill
// rate follows an AIMD law driven by the windowed placement-delay p99 and
// the queue-delay gradient. When the window p99 breaches the SLO — or the
// queue head's age exceeds it and is still growing — the rate is cut
// multiplicatively; otherwise it recovers additively toward the offered
// rate. Below one token the bucket has a brown-out band where requests are
// admitted degraded rather than refused.
type shedder struct {
	enabled    bool
	rate       float64 // tokens/second
	tokens     float64
	burst      float64
	minRate    float64
	lastQDelay sim.Duration
}

const (
	shedBeta     = 0.8  // multiplicative decrease on breach
	shedAlpha    = 0.05 // additive increase, as a share of the offered rate
	degradeCost  = 0.25 // tokens consumed by a degraded admission
	degradeBand  = 0.25 // minimum tokens for a degraded admission
	retierEvery  = sim.Second
	pressureFor  = 10 // consecutive ticks of queue delay over SLO
	ewmaAlpha    = 0.2
	minShedRate  = 5.0
	shedHeadroom = 1.25 // rate cap as a multiple of the offered rate
)

// Run executes one open-loop serving simulation against env's machine. The
// caller owns fleet preparation (see PrewarmFleet); Run owns everything
// from the first arrival to the final accounting.
func Run(env baseline.Env, cfg Config) Result {
	cfg = cfg.withDefaults()
	s := &server{
		cfg: cfg,
		env: env,
		eng: env.Machine.Eng,
		d:   cluster.NewDispatcher(env),
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	s.d.MaxTasksPerVM = cfg.MaxTasksPerVM
	s.d.Policy = cfg.Policy
	s.backendOrder = env.Machine.BackendNames()

	if cfg.Breakers {
		s.breakers = make(map[string]*faults.Breaker)
		for i, name := range s.backendOrder {
			s.breakers[name] = faults.NewBreaker(s.eng, name, cfg.Seed+int64(i)+1)
		}
		s.d.Gate = func(backend string) bool {
			b := s.breakers[backend]
			return b == nil || b.Permits()
		}
	}

	if obs.On {
		if r := obs.Rec(s.eng); r != nil {
			s.rec = r
			s.obsQueue = r.Timeline("serve/queue-depth", obs.DefaultTimelineWidth, obs.ModeMean)
			s.obsRate = r.Timeline("serve/shed-rate-limit", obs.DefaultTimelineWidth, obs.ModeMean)
			s.obsArrival = r.Timeline("serve/offered-rate", obs.DefaultTimelineWidth, obs.ModeMean)
			for _, name := range s.backendOrder {
				if b := s.breakers[name]; b != nil {
					name := name
					b.OnTransition = func(from, to faults.BreakerState, at sim.Time) {
						s.rec.Instant("serve/breaker", name+" "+from.String()+"→"+to.String(), "")
					}
				}
			}
			r.OnSeal(func() {
				r.Counter("serve/offered").Add(float64(s.res.Offered))
				r.Counter("serve/admitted").Add(float64(s.res.Admitted))
				r.Counter("serve/refused-queue-full").Add(float64(s.res.RefusedQueueFull))
				r.Counter("serve/refused-deadline").Add(float64(s.res.RefusedDeadline))
				r.Counter("serve/refused-throttle").Add(float64(s.res.RefusedThrottle))
				r.Counter("serve/degraded").Add(float64(s.res.Degraded))
				r.Counter("serve/shed").Add(float64(s.res.Shed))
				r.Counter("serve/completed").Add(float64(s.res.Completed))
				r.Counter("serve/breaker-opens").Add(float64(s.res.BreakerOpens))
				r.Counter("serve/breaker-closes").Add(float64(s.res.BreakerCloses))
				r.Counter("serve/retiers").Add(float64(s.res.Retiers))
			})
		}
	}

	if cfg.Shedding {
		offered := cfg.Arrivals.Rate(0)
		s.shed = shedder{
			enabled: true,
			rate:    offered * shedHeadroom,
			minRate: minShedRate,
		}
		s.shed.burst = s.shed.rate * 0.25
		if s.shed.burst < 8 {
			s.shed.burst = 8
		}
		s.shed.tokens = s.shed.burst
	}

	// The serving clock is relative to the instant Run is entered: the
	// engine may already be deep into virtual time (fleet prewarming boots
	// VMs for ~52 virtual seconds), and arrival processes are defined over
	// elapsed serving time.
	s.start = s.eng.Now()
	end := s.start.Add(cfg.Duration + cfg.Drain)

	// Arrival loop.
	var arrive func(i int)
	arrive = func(i int) {
		now := s.eng.Now()
		if now.Sub(s.start) >= cfg.Duration {
			return
		}
		s.offer(i)
		gap := cfg.Arrivals.Gap(s.elapsed(), s.rng)
		s.eng.At(now.Add(gap), func() { arrive(i + 1) })
	}
	s.eng.Immediately(func() { arrive(0) })

	// Control loop.
	var tick func()
	tick = func() {
		s.tick()
		next := s.eng.Now().Add(cfg.Tick)
		if next <= end {
			s.eng.At(next, tick)
		}
	}
	s.eng.At(s.start.Add(cfg.Tick), tick)

	s.eng.RunUntil(end)

	// Final accounting.
	s.res.InFlight = len(s.queue) + s.pendingReady + s.running
	s.checkConservation()
	s.res.DelaySamples = s.delays.Count()
	if n := s.delays.Count(); n > 0 {
		s.res.DelayP50 = sim.Duration(s.delays.Quantile(0.50))
		s.res.DelayP95 = sim.Duration(s.delays.Quantile(0.95))
		s.res.DelayP99 = sim.Duration(s.delays.Quantile(0.99))
		viol := 0.0
		// Violation fraction from the histogram's view of the SLO boundary
		// would be approximate; the exact count is tracked at record time.
		viol = float64(s.res.DelaySamples-s.inSLOSamples) / float64(n)
		s.res.SLOViolationFrac = viol
	}
	if cfg.Duration > 0 {
		s.res.GoodputRPS = s.goodWeight / cfg.Duration.Seconds()
	}
	if s.res.Offered > 0 {
		s.res.ShedRate = float64(s.res.RefusedQueueFull+s.res.RefusedDeadline+
			s.res.RefusedThrottle+s.res.Shed) / float64(s.res.Offered)
	}
	for _, name := range s.backendOrder {
		if b := s.breakers[name]; b != nil {
			s.res.BreakerOpens += int(b.Opens())
			s.res.BreakerCloses += int(b.Closes())
		}
	}
	if s.shed.enabled {
		s.res.ShedderRate = s.shed.rate
	}
	return s.res
}

// elapsed is serving time: engine time since Run began, as the sim.Time
// the arrival processes are defined over.
func (s *server) elapsed() sim.Time {
	return sim.Time(s.eng.Now().Sub(s.start))
}

// offer handles one arrival: admission control, then queue + pump.
func (s *server) offer(i int) {
	s.res.Offered++
	if s.obsArrival != nil {
		s.obsArrival.Add(s.eng.Now(), s.cfg.Arrivals.Rate(s.elapsed()))
	}

	// 1. Bounded queue.
	if len(s.queue) >= s.cfg.QueueCap {
		s.res.RefusedQueueFull++
		return
	}
	// 2. Deadline-based admission: refuse work predicted to wait past the
	// deadline (queue length × smoothed service time / fleet slots).
	if wait := s.predictedWait(); s.cfg.AdmitDeadline > 0 && wait > s.cfg.AdmitDeadline {
		s.res.RefusedDeadline++
		return
	}
	// 3. Adaptive shedder.
	degraded := false
	if s.shed.enabled {
		switch {
		case s.shed.tokens >= 1:
			s.shed.tokens--
		case s.shed.tokens >= degradeBand:
			s.shed.tokens -= degradeCost
			degraded = true
		default:
			s.res.RefusedThrottle++
			return
		}
	}

	app := s.cfg.Templates[s.rng.Intn(len(s.cfg.Templates))]
	app.Seed = s.cfg.Seed + int64(i)
	if degraded {
		// Brown-out: serve the cheap version of the response — a quarter
		// of the accesses — instead of refusing outright.
		app.Spec.MainAccesses /= 4
		if app.Spec.MainAccesses < 64 {
			app.Spec.MainAccesses = 64
		}
		s.res.Degraded++
	}
	s.res.Admitted++
	s.queue = append(s.queue, queued{app: app, arrived: s.eng.Now(), degraded: degraded})
	if len(s.queue) > s.res.MaxQueue {
		s.res.MaxQueue = len(s.queue)
	}
	s.pump()
}

// predictedWait estimates how long a new arrival would queue: requests
// ahead of it divided by the fleet's smoothed service throughput.
func (s *server) predictedWait() sim.Duration {
	if s.ewmaServiceNS <= 0 {
		return 0 // no evidence yet: admit
	}
	slots := 0
	for range s.env.Machine.VMs() {
		slots += s.cfg.MaxTasksPerVM
	}
	if slots == 0 {
		slots = 1
	}
	return sim.Duration(float64(len(s.queue)+1) * s.ewmaServiceNS / float64(slots))
}

// pump dispatches from the queue head until the fleet refuses. Expired
// work is shed here, at the last possible moment: a request that already
// waited past the deadline is never dispatched, which is what bounds the
// placement delay of everything that *is* dispatched (the tick-time queue
// scan alone would leave a one-tick race where expired work slips out).
func (s *server) pump() {
	now := s.eng.Now()
	for len(s.queue) > 0 {
		q := s.queue[0]
		if s.cfg.AdmitDeadline > 0 && now.Sub(q.arrived) > s.cfg.AdmitDeadline {
			s.res.Shed++
			s.queue = s.queue[1:]
			continue
		}
		pl := s.d.Dispatch(q.app, s.readyFn(q))
		if pl.Via == cluster.ViaNone {
			return
		}
		s.queue = s.queue[1:]
		s.pendingReady++
		if b := s.breakers[pl.Decision.Backend]; b != nil && b.State() == faults.BreakerHalfOpen {
			// The selection peeked via Permits; the winner claims its
			// half-open probe slot here.
			b.Allow()
		}
	}
}

// readyFn builds the VM-ready callback for one queued request: measure the
// placement delay (submission → VM-ready, counted exactly once — see
// cluster.RunArrivalSim) and start the task.
func (s *server) readyFn(q queued) func(cluster.Placement) {
	fired := false
	return func(pl cluster.Placement) {
		if fired {
			return
		}
		fired = true
		s.pendingReady--
		s.running++

		delay := s.eng.Now().Sub(q.arrived)
		inSLO := delay <= s.cfg.SLO
		s.delays.Add(float64(delay))
		if inSLO {
			s.inSLOSamples++
		}
		s.ring[s.ringN%len(s.ring)] = delay
		s.ringN++
		if s.rec != nil {
			s.rec.Observe("serve/placement-delay", float64(delay))
		}

		// Serving fleets overcommit memory: a VM's DRAM is shared by its
		// MaxTasksPerVM concurrent requests, so each request's local share
		// is capped by pages/(slots × footprint) regardless of what the
		// console's SLO planning asked for. This cap is what makes backend
		// speed matter for serving capacity — the overflow must live on a
		// backend, and how fast that backend is sets the service time.
		local := pl.Decision.LocalRatio
		if q.app.Spec.FootprintPages > 0 {
			memCap := float64(pl.VM.Pages) /
				float64(s.cfg.MaxTasksPerVM*q.app.Spec.FootprintPages)
			if memCap < 0.05 {
				memCap = 0.05
			}
			if memCap < local {
				local = memCap
			}
		}
		be := s.env.Machine.Backend(pl.VM.ActiveBackend())
		setup := baseline.PrepareXDM(s.env, be, q.app.Spec, local, q.app.SLO, q.app.Seed)
		cfg := setup.Config
		cfg.SwapPath = pl.VM.Path()
		// Per-op timeout/retry so a dead backend fails through, and the
		// breaker observes every attempt outcome.
		cfg.SwapPath.Retry = swap.DefaultRetryPolicy(be.Kind())
		if b := s.breakers[pl.VM.ActiveBackend()]; b != nil {
			cfg.SwapPath.Health = b
		}
		task.New(cfg).Start(func(task.Stats) {
			s.running--
			s.res.Completed++
			if inSLO {
				s.res.CompletedInSLO++
				if q.degraded {
					s.goodWeight += degradeCost
				} else {
					s.goodWeight++
				}
			}
			runtime := float64(s.eng.Now().Sub(q.arrived) - delay)
			if s.ewmaServiceNS <= 0 {
				s.ewmaServiceNS = runtime
			} else {
				s.ewmaServiceNS += ewmaAlpha * (runtime - s.ewmaServiceNS)
			}
			s.d.Release(pl)
			s.pump()
		})
	}
}

// tick is the control loop: deadline scanning, shedder adaptation,
// pressure detection and re-tiering, conservation checking, timelines.
func (s *server) tick() {
	now := s.eng.Now()

	// Shed queued work that has already waited past the deadline.
	kept := s.queue[:0]
	for _, q := range s.queue {
		if s.cfg.AdmitDeadline > 0 && now.Sub(q.arrived) > s.cfg.AdmitDeadline {
			s.res.Shed++
			continue
		}
		kept = append(kept, q)
	}
	s.queue = kept

	// Queue-delay signal: age of the head (0 when empty).
	var qDelay sim.Duration
	if len(s.queue) > 0 {
		qDelay = now.Sub(s.queue[0].arrived)
	}

	if s.shed.enabled {
		p99 := s.windowP99()
		grad := qDelay - s.shed.lastQDelay
		s.shed.lastQDelay = qDelay
		offered := s.cfg.Arrivals.Rate(s.elapsed())
		maxRate := offered * shedHeadroom
		if maxRate < s.shed.minRate {
			maxRate = s.shed.minRate
		}
		breach := (p99 > 0 && p99 > s.cfg.SLO) || (qDelay > s.cfg.SLO && grad > 0)
		if breach {
			s.shed.rate *= shedBeta
			if s.shed.rate < s.shed.minRate {
				s.shed.rate = s.shed.minRate
			}
		} else {
			s.shed.rate += shedAlpha * maxRate
		}
		if s.shed.rate > maxRate {
			s.shed.rate = maxRate
		}
		s.shed.tokens += s.shed.rate * s.cfg.Tick.Seconds()
		if s.shed.tokens > s.shed.burst {
			s.shed.tokens = s.shed.burst
		}
		if s.obsRate != nil {
			s.obsRate.Add(now, s.shed.rate)
		}
	}

	// Online re-tiering. The dispatcher's ViaSwitch branch already
	// converts idle VMs to the chosen backend on demand, but that pays
	// the switch latency on a request's critical path. The control loop
	// pre-positions instead: under sustained queue pressure, or as soon
	// as a breaker condemns a backend, idle VMs parked on sick backends
	// are switched ahead of demand so the next dispatch finds a Free VM
	// already active on a healthy backend.
	if qDelay > s.cfg.SLO {
		s.pressureTicks++
	} else {
		s.pressureTicks = 0
	}
	condemned := false
	for _, name := range s.backendOrder {
		if b := s.breakers[name]; b != nil && !b.Permits() {
			condemned = true
			break
		}
	}
	if s.cfg.Retier && (s.pressureTicks >= pressureFor || condemned) &&
		now.Sub(s.lastRetier) >= retierEvery {
		s.retier()
		s.lastRetier = now
	}

	if s.obsQueue != nil {
		s.obsQueue.Add(now, float64(len(s.queue)))
	}

	s.checkConservation()
	s.pump()
}

// checkConservation evaluates the conservation law against independently
// tracked structures: the queue slice, the pending-ready counter, and the
// running-task counter.
func (s *server) checkConservation() {
	if !invariant.On {
		return
	}
	inFlight := len(s.queue) + s.pendingReady + s.running
	ckConservation.Assert(
		s.res.Admitted == s.res.Completed+s.res.Shed+inFlight,
		"admitted %d != completed %d + shed %d + in-flight %d (queue %d, pending %d, running %d)",
		s.res.Admitted, s.res.Completed, s.res.Shed, inFlight,
		len(s.queue), s.pendingReady, s.running)
}

// windowP99 computes the p99 of the recent placement-delay ring.
func (s *server) windowP99() sim.Duration {
	n := s.ringN
	if n > len(s.ring) {
		n = len(s.ring)
	}
	if n == 0 {
		return 0
	}
	buf := make([]sim.Duration, n)
	copy(buf, s.ring[:n])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := (n*99 + 99) / 100
	if idx >= n {
		idx = n - 1
	}
	return buf[idx]
}

// retier switches Free VMs off broken or saturated backends onto the
// healthiest one — online backend reconfiguration under pressure. VMs
// running tasks are left alone (live migration is the dispatcher's warm
// switch on the next placement).
func (s *server) retier() {
	target := s.bestBackend()
	if target == "" {
		return
	}
	for _, v := range s.env.Machine.VMs() {
		if v.State() != vm.Free {
			continue
		}
		cur := v.ActiveBackend()
		if cur == target || !s.backendSick(cur) {
			continue
		}
		if err := v.SwitchBackend(target, nil); err == nil {
			s.res.Retiers++
			if s.rec != nil {
				s.rec.Instant("serve/retier", v.Name+" "+cur+"→"+target, "")
			}
		}
	}
}

// backendSick reports whether a backend should shed its idle VMs: circuit
// open, device down/stalled, or saturated.
func (s *server) backendSick(name string) bool {
	if b := s.breakers[name]; b != nil && !b.Permits() {
		return true
	}
	dev := s.env.Machine.Device(name)
	if dev == nil {
		return false
	}
	return dev.Down() || dev.Stalled() || dev.QueueDepth() > 4*dev.Channels()
}

// bestBackend picks the healthy backend with the shallowest device queue,
// ties broken by name order (deterministic).
func (s *server) bestBackend() string {
	best := ""
	bestDepth := 0
	for _, name := range s.backendOrder {
		if s.backendSick(name) {
			continue
		}
		depth := 0
		if dev := s.env.Machine.Device(name); dev != nil {
			depth = dev.QueueDepth()
		}
		if best == "" || depth < bestDepth {
			best, bestDepth = name, depth
		}
	}
	return best
}

// PrewarmFleet boots n VMs round-robin across the machine's backends, each
// with every backend warm (so re-tiering and warm switches are possible),
// and runs the engine until the boots complete. Serving runs call this
// before Run so the arrival window starts against a ready fleet — cold VM
// boots (~52s virtual) would otherwise dominate any realistic window.
func PrewarmFleet(env baseline.Env, n, cores, pages int) {
	names := env.Machine.BackendNames()
	if len(names) == 0 {
		return
	}
	for i := 0; i < n; i++ {
		order := make([]string, 0, len(names))
		for j := range names {
			order = append(order, names[(i+j)%len(names)])
		}
		env.Machine.CreateVM("serve-"+order[0], cores, pages, order, nil)
	}
	env.Machine.Eng.Run()
}
