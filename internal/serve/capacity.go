package serve

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/sim"
	"repro/internal/workload"
)

// CapacityConfig ramps offered load stepwise until the overload signal
// trips, discovering a configuration's maximum sustainable request rate
// automatically instead of by operator bisection.
type CapacityConfig struct {
	// StartRPS, StepRPS, MaxRPS define the ramp: offered Poisson rates
	// Start, Start+Step, ... up to Max (inclusive).
	StartRPS float64
	StepRPS  float64
	MaxRPS   float64
	// Window is the arrival window simulated at each step (plus a drain of
	// one window quarter).
	Window sim.Duration
	// MaxViolationFrac and MaxShedRate are the overload signal: a step is
	// sustainable while the SLO-violation fraction and the shed rate both
	// stay at or under these bounds (defaults 0.05 and 0.01).
	MaxViolationFrac float64
	MaxShedRate      float64
}

func (c CapacityConfig) withDefaults() CapacityConfig {
	if c.MaxViolationFrac <= 0 {
		c.MaxViolationFrac = 0.05
	}
	if c.MaxShedRate <= 0 {
		c.MaxShedRate = 0.01
	}
	return c
}

// CapacityPoint is one rung of the ramp.
type CapacityPoint struct {
	OfferedRPS  float64
	Sustainable bool
	Result      Result
}

// CapacityResult is the outcome of one configuration's sweep.
type CapacityResult struct {
	Name string
	// MaxSustainableRPS is the highest offered rate that stayed under the
	// overload signal (0 if even the first rung tripped it).
	MaxSustainableRPS float64
	// Tripped reports whether the ramp found the knee (false means the
	// sweep exhausted MaxRPS while still sustainable — raise MaxRPS).
	Tripped bool
	Points  []CapacityPoint
}

// RungRunner runs one rung of a capacity ramp — a fresh, independent
// simulation at the given offered rate over the given arrival window — and
// reports the serving outcome. It abstracts the system under test away from
// the ramp logic, so capacity discovery applies equally to a baseline.Env
// fleet and to a sharded datacenter arena.
type RungRunner func(rps float64, window, drain sim.Duration) Result

// SweepFunc is capacity discovery over any rung runner: serve a Poisson
// window at each ramp rate and stop at the first rung that trips the
// overload signal. Rungs are inherently sequential (each rung decides
// whether the next runs); parallelism lives across configurations (see
// SweepGrid).
func SweepFunc(name string, run RungRunner, cc CapacityConfig) CapacityResult {
	cc = cc.withDefaults()
	out := CapacityResult{Name: name}
	for rps := cc.StartRPS; rps <= cc.MaxRPS+1e-9; rps += cc.StepRPS {
		res := run(rps, cc.Window, cc.Window/4)
		ok := res.SLOViolationFrac <= cc.MaxViolationFrac && res.ShedRate <= cc.MaxShedRate
		out.Points = append(out.Points, CapacityPoint{OfferedRPS: rps, Sustainable: ok, Result: res})
		if !ok {
			out.Tripped = true
			break
		}
		out.MaxSustainableRPS = rps
		if cc.StepRPS <= 0 {
			break
		}
	}
	return out
}

// Sweep is one fleet configuration's capacity discovery: build a fresh
// environment per rung (each rung is an independent simulation — no state
// bleeds between load levels) and ramp until overload.
func Sweep(name string, build func() baseline.Env, base Config, cc CapacityConfig) CapacityResult {
	return SweepFunc(name, func(rps float64, window, drain sim.Duration) Result {
		cfg := base
		cfg.Arrivals = workload.Poisson{RPS: rps}
		cfg.Duration = window
		if cfg.Drain <= 0 {
			cfg.Drain = drain
		}
		return Run(build(), cfg)
	}, cc)
}

// NamedSweep pairs a configuration with its sweep parameters for SweepGrid.
// Exactly one of Build (a serving fleet swept through Run) or RunRung (an
// arbitrary rung runner, e.g. a sharded arena) must be set.
type NamedSweep struct {
	Name  string
	Build func() baseline.Env
	Serve Config
	Cap   CapacityConfig

	// RunRung, when non-nil, replaces the Build/Serve fleet path.
	RunRung RungRunner
}

// SweepGrid runs several configuration sweeps, fanned out over workers.
// Each sweep is an independent deterministic simulation and results are
// assembled by input index, so output is byte-identical for any worker
// count. (The experiments package's grid runner is not reused here because
// experiments imports serve — and a sweep's inner ramp is sequential
// anyway; only whole configurations parallelize.)
func SweepGrid(sweeps []NamedSweep, workers int) []CapacityResult {
	if workers < 1 {
		workers = 1
	}
	if workers > len(sweeps) {
		workers = len(sweeps)
	}
	results := make([]CapacityResult, len(sweeps))
	jobs := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			for i := range jobs {
				s := sweeps[i]
				if s.RunRung != nil {
					results[i] = SweepFunc(s.Name, s.RunRung, s.Cap)
				} else {
					results[i] = Sweep(s.Name, s.Build, s.Serve, s.Cap)
				}
			}
			done <- struct{}{}
		}()
	}
	for i := range sweeps {
		jobs <- i
	}
	close(jobs)
	for w := 0; w < workers; w++ {
		<-done
	}
	return results
}

// RenderCapacity formats sweep results as an aligned text report, one
// configuration section per sweep, ending with the discovered capacity.
func RenderCapacity(results []CapacityResult) string {
	out := ""
	for _, r := range results {
		out += fmt.Sprintf("## capacity: %s\n", r.Name)
		out += fmt.Sprintf("%10s %12s %10s %10s %10s %10s  %s\n",
			"offered", "admitted", "goodput", "shed%", "viol%", "p99", "verdict")
		for _, p := range r.Points {
			verdict := "ok"
			if !p.Sustainable {
				verdict = "OVERLOAD"
			}
			out += fmt.Sprintf("%10.1f %12d %10.1f %9.2f%% %9.2f%% %10s  %s\n",
				p.OfferedRPS, p.Result.Admitted, p.Result.GoodputRPS,
				100*p.Result.ShedRate, 100*p.Result.SLOViolationFrac,
				p.Result.DelayP99, verdict)
		}
		if r.Tripped {
			out += fmt.Sprintf("max sustainable: %.1f req/s\n\n", r.MaxSustainableRPS)
		} else {
			out += fmt.Sprintf("max sustainable: >= %.1f req/s (ramp exhausted before overload)\n\n", r.MaxSustainableRPS)
		}
	}
	return out
}
