// Package invariant is the simulator's runtime checking layer: conservation
// laws and structural invariants (clock monotonicity, page conservation, LRU
// exclusivity, swap-slot allocation discipline, link-throughput bounds, queue
// occupancy) are registered once per call site and evaluated inline on the
// hot paths of sim, mem, swap, device, pcie, and vm.
//
// The layer is designed to be near-zero-cost when disabled: every call site
// guards its check with `if invariant.On { ... }`, a single predictable
// branch on a package-level bool, so the condition expression itself is never
// evaluated in normal runs. When enabled, each check counts hits and failures
// with atomic counters (grids run cells on several goroutines), and a failure
// is routed to the installed violation handler — panic by default, or a
// collector in tests that want to observe violations without dying.
package invariant

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// On gates every check in the tree. Callers must read it before evaluating a
// check condition:
//
//	if invariant.On {
//		ckClock.Assert(ev.at >= e.now, "time went backwards")
//	}
//
// It is written only by Enable/Disable, which must not race with a running
// simulation: flip it before spawning workers and after joining them.
var On bool

// Enable turns checking on. Counters keep accumulating across Enable/Disable
// cycles until Reset.
func Enable() { On = true }

// Disable turns checking off.
func Disable() { On = false }

// Check is one registered invariant call site.
type Check struct {
	name  string
	hits  atomic.Uint64
	fails atomic.Uint64
}

// Violation describes one failed check.
type Violation struct {
	Check   string
	Message string
}

func (v Violation) Error() string {
	return fmt.Sprintf("invariant %s violated: %s", v.Check, v.Message)
}

var (
	mu       sync.Mutex
	registry []*Check
	handler  atomic.Pointer[func(Violation)]
)

// Register creates (or returns the existing) check with the given name.
// Call it from package var initializers so the check object is resolved once,
// not looked up per event.
func Register(name string) *Check {
	mu.Lock()
	defer mu.Unlock()
	for _, c := range registry {
		if c.name == name {
			return c
		}
	}
	c := &Check{name: name}
	registry = append(registry, c)
	return c
}

// Name reports the check's registered name.
func (c *Check) Name() string { return c.name }

// Assert evaluates one occurrence of the invariant: ok=true counts a hit,
// ok=false counts a failure and routes a formatted Violation to the handler.
// Callers are expected to have tested invariant.On already; Assert itself
// does not re-check it so that tests can drive checks directly.
func (c *Check) Assert(ok bool, format string, args ...any) {
	c.hits.Add(1)
	if ok {
		return
	}
	c.fails.Add(1)
	v := Violation{Check: c.name, Message: fmt.Sprintf(format, args...)}
	if h := handler.Load(); h != nil {
		(*h)(v)
		return
	}
	panic(v)
}

// Hits reports how many times this check was evaluated.
func (c *Check) Hits() uint64 { return c.hits.Load() }

// Fails reports how many times this check failed.
func (c *Check) Fails() uint64 { return c.fails.Load() }

// SetHandler installs fn as the violation handler and returns a function
// restoring the previous one. A nil handler restores the default (panic).
// Tests use this to collect violations instead of crashing:
//
//	defer invariant.SetHandler(func(v invariant.Violation) { got = append(got, v) })()
func SetHandler(fn func(Violation)) (restore func()) {
	var prev *func(Violation)
	if fn == nil {
		prev = handler.Swap(nil)
	} else {
		prev = handler.Swap(&fn)
	}
	return func() { handler.Store(prev) }
}

// Stat is one row of Report.
type Stat struct {
	Name  string
	Hits  uint64
	Fails uint64
}

// Report returns per-check statistics sorted by name, skipping checks that
// never ran.
func Report() []Stat {
	mu.Lock()
	defer mu.Unlock()
	out := make([]Stat, 0, len(registry))
	for _, c := range registry {
		if h := c.hits.Load(); h > 0 {
			out = append(out, Stat{Name: c.name, Hits: h, Fails: c.fails.Load()})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Checks reports the total number of check evaluations across all sites.
func Checks() uint64 {
	mu.Lock()
	defer mu.Unlock()
	var n uint64
	for _, c := range registry {
		n += c.hits.Load()
	}
	return n
}

// Violations reports the total number of failures across all sites.
func Violations() uint64 {
	mu.Lock()
	defer mu.Unlock()
	var n uint64
	for _, c := range registry {
		n += c.fails.Load()
	}
	return n
}

// PrintingHandler returns a violation handler that writes each violation to
// w instead of panicking, capping output at max lines so a hot broken check
// cannot flood the terminal. For CLI use; tests usually collect instead.
func PrintingHandler(w io.Writer, max int) func(Violation) {
	var printed atomic.Uint64
	return func(v Violation) {
		n := printed.Add(1)
		if max > 0 && n > uint64(max) {
			return
		}
		fmt.Fprintf(w, "%v\n", v)
		if max > 0 && n == uint64(max) {
			fmt.Fprintf(w, "invariant: further violations suppressed\n")
		}
	}
}

// WriteReport writes per-check evaluation counts and a total line to w.
func WriteReport(w io.Writer) {
	for _, s := range Report() {
		fmt.Fprintf(w, "invariant %-42s %12d checks %6d violations\n", s.Name, s.Hits, s.Fails)
	}
	fmt.Fprintf(w, "invariants: %d checks, %d violations\n", Checks(), Violations())
}

// Reset zeroes all counters (registrations stay).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for _, c := range registry {
		c.hits.Store(0)
		c.fails.Store(0)
	}
}
