package invariant

import (
	"strings"
	"sync"
	"testing"
)

func TestRegisterDedupes(t *testing.T) {
	a := Register("test.dedupe")
	b := Register("test.dedupe")
	if a != b {
		t.Fatal("Register returned distinct objects for the same name")
	}
	if a.Name() != "test.dedupe" {
		t.Fatalf("Name() = %q", a.Name())
	}
}

func TestAssertCountsAndPanics(t *testing.T) {
	Reset()
	c := Register("test.panics")
	c.Assert(true, "fine")
	if c.Hits() != 1 || c.Fails() != 0 {
		t.Fatalf("hits=%d fails=%d after passing assert", c.Hits(), c.Fails())
	}
	defer func() {
		r := recover()
		v, ok := r.(Violation)
		if !ok {
			t.Fatalf("recovered %T, want Violation", r)
		}
		if !strings.Contains(v.Error(), "test.panics") || !strings.Contains(v.Error(), "boom 7") {
			t.Fatalf("violation message %q", v.Error())
		}
		if c.Fails() != 1 {
			t.Fatalf("fails=%d after failing assert", c.Fails())
		}
	}()
	c.Assert(false, "boom %d", 7)
}

func TestCollectorHandler(t *testing.T) {
	Reset()
	c := Register("test.collect")
	var got []Violation
	restore := SetHandler(func(v Violation) { got = append(got, v) })
	c.Assert(false, "first")
	c.Assert(false, "second")
	restore()
	if len(got) != 2 || got[0].Message != "first" || got[1].Message != "second" {
		t.Fatalf("collected %+v", got)
	}
	// Default handler is back: a failure panics again.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("restored handler did not panic")
			}
		}()
		c.Assert(false, "third")
	}()
}

func TestReportTotalsAndReset(t *testing.T) {
	Reset()
	restore := SetHandler(func(Violation) {})
	defer restore()
	a := Register("test.report.a")
	b := Register("test.report.b")
	a.Assert(true, "")
	a.Assert(false, "x")
	b.Assert(true, "")
	stats := Report()
	var sa, sb *Stat
	for i := range stats {
		switch stats[i].Name {
		case "test.report.a":
			sa = &stats[i]
		case "test.report.b":
			sb = &stats[i]
		}
	}
	if sa == nil || sb == nil {
		t.Fatalf("Report missing rows: %+v", stats)
	}
	if sa.Hits != 2 || sa.Fails != 1 || sb.Hits != 1 || sb.Fails != 0 {
		t.Fatalf("stats a=%+v b=%+v", sa, sb)
	}
	if Checks() < 3 || Violations() < 1 {
		t.Fatalf("Checks=%d Violations=%d", Checks(), Violations())
	}
	Reset()
	if Checks() != 0 || Violations() != 0 {
		t.Fatalf("after Reset: Checks=%d Violations=%d", Checks(), Violations())
	}
	for _, s := range Report() {
		if strings.HasPrefix(s.Name, "test.report.") {
			t.Fatalf("Report still lists %q after Reset", s.Name)
		}
	}
}

func TestEnableDisable(t *testing.T) {
	if On {
		t.Fatal("checks enabled at package init")
	}
	Enable()
	if !On {
		t.Fatal("Enable did not set On")
	}
	Disable()
	if On {
		t.Fatal("Disable did not clear On")
	}
}

// Counters must be safe under concurrent assertion: grid cells evaluate
// checks from several worker goroutines.
func TestConcurrentAsserts(t *testing.T) {
	Reset()
	c := Register("test.concurrent")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Assert(true, "")
			}
		}()
	}
	wg.Wait()
	if c.Hits() != 8000 {
		t.Fatalf("hits = %d, want 8000", c.Hits())
	}
}
