// Package repro is a from-scratch Go reproduction of "Boosting Data Center
// Performance via Intelligently Managed Multi-backend Disaggregated Memory"
// (SC 2024): the xDM multi-backend far-memory management system, rebuilt on
// a deterministic discrete-event simulation of the full hardware/OS stack it
// needs (PCIe fabric, far-memory devices, paging and swap, VMs, cluster
// scheduling).
//
// See README.md for the architecture tour, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for
// paper-vs-measured results. The root-level benchmarks in bench_test.go
// regenerate every table and figure of the paper's evaluation; cmd/xdmbench
// does the same as a standalone binary.
package repro
